"""Self-driving load harness for the socket stack (``repro serve-net``).

Stands up the full network path — N :class:`~repro.net.router.ProcessReplica`
cascade replicas behind a :class:`~repro.net.router.ShardRouter` behind a
:class:`~repro.net.frontend.NetFrontend` — then drives it over real
loopback sockets with a closed-loop :class:`~repro.net.client.NetClient`
fleet and reconciles the books at every layer:

* frontend: ``answered + rejected + failed == requests``
* router:   ``routed + rejected + failed == submitted``
* terminal ratio: every submitted request must reach a terminal frame
  (the ISSUE acceptance asks >= 99 % even with a replica killed).

The synthetic replica stack is the chaos-test oracle cascade: each
"image" is an 11-vector of 10 class scores plus the true label, the BNN
stage reads the scores, the host stage reads the label, and the DMU
reads the top-2 margin — so correctness is exact and the harness
measures queueing and wire behaviour, not numpy throughput.  A
:class:`~repro.faults.FaultPlan` can be injected into every replica
(same seed ⇒ same per-stage fault stream in each), and
``kill_replica_after`` hard-kills one replica mid-run to exercise
failover.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from ..core.dmu import DecisionMakingUnit
from ..faults import FaultPlan, load_fault_plan, wrap_stack
from .client import NetClient
from .frontend import NetFrontend
from .router import ShardRouter

__all__ = [
    "NetBenchConfig",
    "make_oracle_images",
    "oracle_replica_kwargs",
    "run_net_bench",
    "format_net_bench",
]

NUM_CLASSES = 10


def _oracle_bnn_scores(images: np.ndarray) -> np.ndarray:
    return np.asarray(images)[:, :NUM_CLASSES]


def _oracle_mid_scores(images: np.ndarray) -> np.ndarray:
    """Middle-rung oracle: the BNN scores with extra signal on the label.

    Module-level and picklable, like the other stage callables: a ladder
    replica's :class:`~repro.core.LadderStage` crosses the ``spawn``
    boundary inside the factory partial.  The boost models a mid-precision
    engine refining the cheap stage's answer — most images sharpen enough
    for the mid DMU to accept, the rest still forward to the host.
    """
    images = np.asarray(images)
    scores = images[:, :NUM_CLASSES].copy()
    labels = images[:, NUM_CLASSES].astype(int)
    scores[np.arange(len(scores)), labels] += 1.5
    return scores


def _oracle_host_predict(images: np.ndarray) -> np.ndarray:
    return np.asarray(images)[:, NUM_CLASSES].astype(int)


def _margin_dmu(threshold: float) -> DecisionMakingUnit:
    weights = np.zeros(NUM_CLASSES)
    weights[0], weights[1] = 4.0, -4.0  # sorted top-2 margin
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def make_oracle_images(n: int, seed: int = 0, signal: float = 2.0) -> np.ndarray:
    """(n, 11) score-vector "images" with the true label appended."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, NUM_CLASSES, size=n)
    scores = rng.normal(0.0, 1.0, size=(n, NUM_CLASSES))
    scores[np.arange(n), labels] += signal
    return np.concatenate([scores, labels[:, None].astype(float)], axis=1)


def oracle_replica_kwargs(
    threshold: float = 0.7,
    fault_plan: FaultPlan | None = None,
    batch_delay_s: float = 0.001,
    host_queue_capacity: int = 256,
    ladder: bool = False,
) -> dict:
    """:class:`~repro.serve.CascadeServer` kwargs for one oracle replica.

    Top-level and picklable (``spawn``-safe): this is the ``factory``
    handed to :meth:`ShardRouter.spawn` via :func:`functools.partial`.
    When *fault_plan* is given the three stage callables are wrapped in
    a fresh :class:`~repro.faults.FaultInjector` inside the child, so
    every replica replays the same seeded per-stage fault stream.

    With ``ladder=True`` each replica runs the 3-stage precision ladder
    (``docs/LADDER.md``): a ``mid1`` rung (:func:`_oracle_mid_scores`,
    label-boosted scores) between the BNN and the host, with its own
    margin DMU at the same static threshold.
    """
    from ..core.ladder import LadderStage

    bnn_fn, dmu, host_fn = _oracle_bnn_scores, _margin_dmu(threshold), _oracle_host_predict
    if fault_plan is not None:
        bnn_fn, dmu, host_fn, _ = wrap_stack(fault_plan, bnn_fn, dmu, host_fn)
    kwargs = dict(
        bnn_scores_fn=bnn_fn,
        dmu=dmu,
        host_predict_fn=host_fn,
        batch_delay_s=batch_delay_s,
        host_queue_capacity=host_queue_capacity,
    )
    if ladder:
        kwargs["ladder"] = [
            LadderStage(
                name="mid1",
                scores_fn=_oracle_mid_scores,
                dmu=_margin_dmu(threshold),
            )
        ]
    return kwargs


@dataclass(frozen=True)
class NetBenchConfig:
    """One ``repro serve-net`` scenario."""

    num_requests: int = 200
    num_clients: int = 4
    num_replicas: int = 2
    placement: str = "round_robin"
    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral
    max_inflight: int = 256
    threshold: float = 0.7
    signal: float = 2.0            # score margin of the synthetic stream
    seed: int = 0
    fault_plan_path: str | None = None
    #: Hard-kill one replica after this many submitted requests (chaos).
    kill_replica_after: int | None = None
    #: Run each replica as a 3-stage precision ladder (bnn -> mid1 -> host).
    ladder: bool = False


def _client_worker(config, address, images, outcome, lock):
    results, errors = [], []
    with NetClient(*address) as client:
        for image in images:
            try:
                results.append(client.classify(image, timeout=30.0))
            except Exception as exc:
                errors.append(exc)
    with lock:
        outcome["results"].extend(results)
        outcome["errors"].extend(errors)


def run_net_bench(config: NetBenchConfig) -> dict:
    """Run one scenario; returns the reconciled report dict."""
    fault_plan = (
        load_fault_plan(config.fault_plan_path) if config.fault_plan_path else None
    )
    factory = partial(
        oracle_replica_kwargs,
        threshold=config.threshold,
        fault_plan=fault_plan,
        ladder=config.ladder,
    )
    images = make_oracle_images(config.num_requests, seed=config.seed,
                                signal=config.signal)
    shares = np.array_split(np.arange(config.num_requests), config.num_clients)

    t_start = time.monotonic()
    with ShardRouter.spawn(
        factory, config.num_replicas, placement=config.placement
    ) as router:
        frontend = NetFrontend(
            router, host=config.host, port=config.port,
            max_inflight=config.max_inflight,
        )
        address = frontend.start()
        outcome = {"results": [], "errors": []}
        lock = threading.Lock()
        killer = None
        if config.kill_replica_after is not None:
            def _kill_when_due():
                while router.snapshot().submitted < config.kill_replica_after:
                    time.sleep(0.002)
                router.replicas[0].kill()
            killer = threading.Thread(target=_kill_when_due, daemon=True)
            killer.start()
        clients = [
            threading.Thread(
                target=_client_worker,
                args=(config, address, images[share], outcome, lock),
                daemon=True,
            )
            for share in shares if len(share)
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join(timeout=120.0)
        if killer is not None:
            killer.join(timeout=5.0)
        pings = router.ping(timeout=2.0)
        front_snap = frontend.metrics.snapshot()
        route_snap = router.snapshot()
        frontend.close()
    wall = time.monotonic() - t_start

    terminal = len(outcome["results"]) + len(outcome["errors"])
    sources: dict[str, int] = {}
    for result in outcome["results"]:
        sources[result.source] = sources.get(result.source, 0) + 1

    report = {
        "config": {
            "num_requests": config.num_requests,
            "num_clients": config.num_clients,
            "num_replicas": config.num_replicas,
            "placement": config.placement,
            "fault_plan": config.fault_plan_path,
            "kill_replica_after": config.kill_replica_after,
            "ladder": config.ladder,
            "seed": config.seed,
        },
        "wall_seconds": wall,
        "client": {
            "answered": len(outcome["results"]),
            "errors": len(outcome["errors"]),
            "error_types": sorted(
                {type(exc).__name__ for exc in outcome["errors"]}
            ),
            "terminal": terminal,
            "terminal_ratio": terminal / config.num_requests if config.num_requests else 1.0,
            "sources": sources,
        },
        "frontend": {
            "connections": front_snap.connections,
            "requests": front_snap.requests,
            "answered": front_snap.answered,
            "rejected": front_snap.rejected,
            "failed": front_snap.failed,
            "protocol_errors": front_snap.protocol_errors,
            "balanced": front_snap.balanced,
        },
        "router": {
            "submitted": route_snap.submitted,
            "routed": route_snap.routed,
            "rejected": route_snap.rejected,
            "failed": route_snap.failed,
            "failovers": route_snap.failovers,
            "replica_routed": route_snap.replica_routed,
            "balanced": route_snap.balanced,
            "pings": pings,
        },
        "ok": (
            front_snap.balanced
            and route_snap.balanced
            and terminal >= 0.99 * config.num_requests
        ),
    }
    return report


def format_net_bench(report: dict) -> str:
    """Human-readable serve-net report."""
    cfg = report["config"]
    client = report["client"]
    front = report["frontend"]
    route = report["router"]
    lines = [
        "serve-net: socket frontend + shard router loopback drive",
        f"  requests={cfg['num_requests']} clients={cfg['num_clients']} "
        f"replicas={cfg['num_replicas']} placement={cfg['placement']}",
    ]
    if cfg.get("ladder"):
        lines.append("  ladder: 3-stage replicas (bnn -> mid1 -> host)")
    if cfg["fault_plan"]:
        lines.append(f"  fault plan: {cfg['fault_plan']}")
    if cfg["kill_replica_after"] is not None:
        lines.append(f"  chaos: replica 0 killed after {cfg['kill_replica_after']} requests")
    lines += [
        f"  wall: {report['wall_seconds']:.2f}s  "
        f"({cfg['num_requests'] / max(report['wall_seconds'], 1e-9):.0f} req/s offered)",
        f"  client:   answered={client['answered']} errors={client['errors']} "
        f"terminal={client['terminal']}/{cfg['num_requests']} "
        f"({client['terminal_ratio']:.1%}) sources={client['sources']}",
        f"  frontend: requests={front['requests']} answered={front['answered']} "
        f"rejected={front['rejected']} failed={front['failed']} "
        f"balanced={front['balanced']}",
        f"  router:   submitted={route['submitted']} routed={route['routed']} "
        f"rejected={route['rejected']} failed={route['failed']} "
        f"failovers={route['failovers']} balanced={route['balanced']}",
        f"  replicas: routed={route['replica_routed']} ping={route['pings']}",
        f"  OK={report['ok']}  (books balance at every layer and >=99% of "
        "requests reached a terminal frame)",
    ]
    if client["error_types"]:
        lines.append(f"  client error types: {', '.join(client['error_types'])}")
    return "\n".join(lines)
