"""Network serving layer: wire protocol, socket frontend, shard router.

Everything outside the interpreter reaches the cascade through this
package (ROADMAP's "millions of users" step — until now
:meth:`repro.serve.CascadeServer.submit` was in-process only):

* :mod:`~repro.net.protocol` — length-prefixed binary frames with pure,
  socket-free encode/decode (golden-fixture stable across releases).
* :mod:`~repro.net.frontend` — asyncio TCP frontend with admission
  control (max in-flight, typed ``REJECTED`` shedding) and per-
  connection backpressure around any ``submit()`` backend.
* :mod:`~repro.net.router` — :class:`ShardRouter` fanning traffic over
  N cascade replica processes with round-robin / rendezvous placement,
  ping health checks and breaker-driven failover; books balance
  ``routed + rejected + failed == submitted`` under chaos.
* :mod:`~repro.net.client` — blocking client resolving each request to
  a :class:`WireResult` bit-identical to the in-process answer.
* :mod:`~repro.net.bench` — the ``repro serve-net`` loopback harness.

See ``docs/NETWORK.md`` for the frame layout, the per-request frame
state machine, and the failover semantics.
"""

from .client import NetClient, WireError, WireRejected, WireResult, WireShutdown
from .frontend import NetFrontend, NetMetrics, NetMetricsSnapshot
from .protocol import (
    FrameDecoder,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .router import (
    InProcessReplica,
    NoHealthyReplica,
    ProcessReplica,
    ReplicaFailure,
    RouterMetrics,
    RouterSnapshot,
    ShardRouter,
)

__all__ = [
    # protocol
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "ProtocolError",
    # frontend
    "NetFrontend",
    "NetMetrics",
    "NetMetricsSnapshot",
    # router
    "ShardRouter",
    "InProcessReplica",
    "ProcessReplica",
    "ReplicaFailure",
    "NoHealthyReplica",
    "RouterMetrics",
    "RouterSnapshot",
    # client
    "NetClient",
    "WireResult",
    "WireRejected",
    "WireError",
    "WireShutdown",
]
