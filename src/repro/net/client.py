"""Blocking socket client for the cascade wire protocol.

:class:`NetClient` is the caller-side mirror of
:class:`repro.net.frontend.NetFrontend`: it speaks
:mod:`repro.net.protocol` over one TCP connection, multiplexes any
number of in-flight requests by id, and resolves each to a
:class:`WireResult` — a field-for-field twin of
:class:`repro.serve.server.ServeResult`, so the loopback tests can
assert wire answers are *bit-identical* to in-process ``submit()``.

A background reader thread drains the socket through a
:class:`~repro.net.protocol.FrameDecoder` and walks each request's
frame sequence (``ACCEPTED → DECISION → LOGITS``); terminal frames
resolve the request's future:

* ``LOGITS`` — success, the future gets the :class:`WireResult`;
* ``REJECTED`` — :class:`WireRejected` (admission refused);
* ``ERROR`` — :class:`WireError` with the server's typed code;
* ``SHUTDOWN`` (or a dropped connection) — :class:`WireShutdown` for
  everything still pending, mirroring the server-side
  :class:`~repro.serve.resilience.ServerClosed` contract.
"""

from __future__ import annotations

import itertools
import socket
import threading
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from .protocol import (
    Accepted,
    Decision,
    Error,
    FrameDecoder,
    Logits,
    Ping,
    Pong,
    ProtocolError,
    Rejected,
    Request,
    Shutdown,
    encode_frame,
)

__all__ = [
    "WireResult",
    "WireRejected",
    "WireError",
    "WireShutdown",
    "NetClient",
]


@dataclass(frozen=True)
class WireResult:
    """One classification as observed over the wire.

    Mirrors :class:`~repro.serve.server.ServeResult` plus the terminal
    ``LOGITS`` confidence vector.
    """

    prediction: int
    bnn_prediction: int
    confidence: float
    source: str                 # "bnn" | "host" | "degraded"
    latency_seconds: float      # server-side latency, as reported
    logits: np.ndarray

    @property
    def rerun(self) -> bool:
        return self.source == "host"


class WireRejected(RuntimeError):
    """The frontend refused admission (REJECTED frame, the 503)."""

    def __init__(self, code: int, reason: str, detail: str):
        super().__init__(f"rejected ({reason}): {detail}")
        self.code = code
        self.reason = reason
        self.detail = detail


class WireError(RuntimeError):
    """The server answered with a typed ERROR frame."""

    def __init__(self, code: int, reason: str, detail: str):
        super().__init__(f"server error ({reason}): {detail}")
        self.code = code
        self.reason = reason
        self.detail = detail


class WireShutdown(RuntimeError):
    """The connection ended (SHUTDOWN frame or EOF) with work pending."""


class _Pending:
    __slots__ = ("future", "accepted", "decision")

    def __init__(self):
        self.future: Future = Future()
        self.accepted = False
        self.decision: Decision | None = None


class NetClient:
    """One connection to a :class:`~repro.net.frontend.NetFrontend`.

    Thread-safe: any thread may ``submit``; responses resolve on the
    reader thread.  Use as a context manager to close the socket.
    """

    def __init__(self, host: str, port: int, *, connect_timeout: float = 10.0):
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._pongs: dict[int, threading.Event] = {}
        self._rid = itertools.count(1)
        self._nonce = itertools.count(1)
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="net-client-reader", daemon=True
        )
        self._reader.start()

    # -- sending ---------------------------------------------------------------
    def _send(self, frame) -> None:
        payload = encode_frame(frame)
        with self._send_lock:
            if self._closed:
                raise WireShutdown("client is closed")
            self._sock.sendall(payload)

    def submit(self, image: np.ndarray, tenant: str = "") -> Future:
        """Send one image; the future resolves to a :class:`WireResult`.

        *tenant* selects the model on a multi-tenant server (protocol
        minor 2); the empty default keeps the request byte-identical to
        the pre-tenancy encoding and routes to the server's default
        tenant.  The future fails with :class:`WireRejected` /
        :class:`WireError` / :class:`WireShutdown` — the wire twins of
        the server-side terminal exceptions.
        """
        rid = next(self._rid)
        pending = _Pending()
        with self._lock:
            if self._closed:
                raise WireShutdown("client is closed")
            self._pending[rid] = pending
        try:
            self._send(Request(rid, np.asarray(image), tenant=tenant))
        except Exception:
            with self._lock:
                self._pending.pop(rid, None)
            raise
        return pending.future

    def classify(
        self, image: np.ndarray, timeout: float | None = 30.0, tenant: str = ""
    ) -> WireResult:
        return self.submit(image, tenant=tenant).result(timeout=timeout)

    def classify_many(
        self, images, timeout: float | None = 30.0, tenant: str = ""
    ) -> list[WireResult]:
        futures = [self.submit(image, tenant=tenant) for image in images]
        return [f.result(timeout=timeout) for f in futures]

    def ping(self, timeout: float = 5.0) -> bool:
        """Round-trip a PING through the frontend; ``True`` on PONG."""
        nonce = next(self._nonce)
        event = threading.Event()
        self._pongs[nonce] = event
        try:
            self._send(Ping(nonce))
        except Exception:
            self._pongs.pop(nonce, None)
            return False
        ok = event.wait(timeout)
        self._pongs.pop(nonce, None)
        return ok and not self._closed

    # -- receiving -------------------------------------------------------------
    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        reason = "connection closed by server"
        try:
            while True:
                data = self._sock.recv(1 << 16)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if isinstance(frame, Shutdown):
                        reason = f"server shutdown: {frame.detail}"
                        raise _Stop()
                    self._handle(frame)
        except _Stop:
            pass
        except ProtocolError as exc:
            reason = f"protocol error from server: {exc}"
        except OSError:
            reason = "connection lost"
        self._fail_all(reason)

    def _handle(self, frame) -> None:
        if isinstance(frame, Pong):
            event = self._pongs.get(frame.nonce)
            if event is not None:
                event.set()
            return
        rid = getattr(frame, "request_id", None)
        with self._lock:
            pending = self._pending.get(rid)
        if pending is None:
            return  # stale traffic for an abandoned request
        if isinstance(frame, Accepted):
            pending.accepted = True
        elif isinstance(frame, Decision):
            pending.decision = frame
        elif isinstance(frame, Logits):
            decision = pending.decision
            self._pop(rid)
            if decision is None:
                pending.future.set_exception(
                    WireError(0, "protocol", "LOGITS before DECISION")
                )
            else:
                pending.future.set_result(WireResult(
                    prediction=decision.prediction,
                    bnn_prediction=decision.bnn_prediction,
                    confidence=decision.confidence,
                    source=decision.source,
                    latency_seconds=decision.latency_seconds,
                    logits=np.asarray(frame.values),
                ))
        elif isinstance(frame, Rejected):
            self._pop(rid)
            pending.future.set_exception(
                WireRejected(frame.code, frame.reason, frame.detail)
            )
        elif isinstance(frame, Error):
            self._pop(rid)
            pending.future.set_exception(
                WireError(frame.code, frame.reason, frame.detail)
            )

    def _pop(self, rid: int) -> None:
        with self._lock:
            self._pending.pop(rid, None)

    def _fail_all(self, reason: str) -> None:
        with self._lock:
            self._closed = True
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            if not pending.future.done():
                pending.future.set_exception(WireShutdown(reason))
        # Connection-scoped errors also fail later ping() calls fast.
        for event in list(self._pongs.values()):
            event.set()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Close the socket; pending futures fail with :class:`WireShutdown`."""
        with self._send_lock:
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)
        self._fail_all("client closed")

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Stop(Exception):
    pass
