"""Deployment serialization of folded BNNs.

FINN ships a trained network as per-engine weight/threshold files baked
into the bitstream.  This module provides the software equivalent: a
single ``.npz`` artifact holding every stage's binary weight matrices and
folded thresholds, loadable without the training-time network or its
RNG state.  Round-tripping is bit-exact.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .inference import FloatDenseHead, FoldedBNN, FoldedConv, FoldedDense, FoldedPool
from .thresholding import ChannelThresholds

__all__ = ["save_folded_bnn", "load_folded_bnn"]

_FORMAT_VERSION = 1


def _threshold_arrays(prefix: str, thr: ChannelThresholds | None, out: dict) -> None:
    if thr is None:
        return
    out[f"{prefix}.tau"] = thr.tau
    out[f"{prefix}.sign"] = thr.sign
    out[f"{prefix}.constant"] = thr.constant


def _load_thresholds(prefix: str, data: dict) -> ChannelThresholds | None:
    key = f"{prefix}.tau"
    if key not in data:
        return None
    return ChannelThresholds(
        tau=data[f"{prefix}.tau"],
        sign=data[f"{prefix}.sign"],
        constant=data[f"{prefix}.constant"],
    )


def save_folded_bnn(net: FoldedBNN, path: str | Path) -> None:
    """Serialize a folded network to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {
        "__format__": np.array(_FORMAT_VERSION),
        "__num_classes__": np.array(net.num_classes),
        "__num_stages__": np.array(len(net.stages)),
    }
    kinds = []
    for i, stage in enumerate(net.stages):
        prefix = f"stage{i}"
        if isinstance(stage, FoldedConv):
            kinds.append("conv")
            arrays[f"{prefix}.weight"] = stage.weight_matrix
            arrays[f"{prefix}.meta"] = np.array(
                [stage.kernel_size, stage.stride, stage.pad, stage.in_channels,
                 int(stage.binary_input)]
            )
            _threshold_arrays(prefix, stage.thresholds, arrays)
        elif isinstance(stage, FoldedDense):
            kinds.append("dense")
            arrays[f"{prefix}.weight"] = stage.weight_matrix
            _threshold_arrays(prefix, stage.thresholds, arrays)
            if stage.output_scale is not None:
                arrays[f"{prefix}.scale"] = stage.output_scale
                arrays[f"{prefix}.offset"] = stage.output_offset
        elif isinstance(stage, FoldedPool):
            kinds.append("pool")
            arrays[f"{prefix}.meta"] = np.array([stage.window, stage.stride])
        elif isinstance(stage, FloatDenseHead):
            kinds.append("float_head")
            arrays[f"{prefix}.weight"] = stage.weight
            if stage.bias is not None:
                arrays[f"{prefix}.bias"] = stage.bias
        else:
            raise TypeError(f"cannot serialize stage {type(stage).__name__}")
    arrays["__kinds__"] = np.array(kinds)
    np.savez_compressed(Path(path), **arrays)


def load_folded_bnn(path: str | Path) -> FoldedBNN:
    """Load a folded network previously written by :func:`save_folded_bnn`."""
    data = dict(np.load(Path(path), allow_pickle=False))
    version = int(data["__format__"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported folded-BNN format version {version}")
    num_stages = int(data["__num_stages__"])
    kinds = [str(k) for k in data["__kinds__"]]
    if len(kinds) != num_stages:
        raise ValueError("corrupt artifact: stage count mismatch")

    stages = []
    for i, kind in enumerate(kinds):
        prefix = f"stage{i}"
        if kind == "conv":
            k, stride, pad, in_ch, binary_input = (int(v) for v in data[f"{prefix}.meta"])
            stages.append(
                FoldedConv(
                    weight_matrix=data[f"{prefix}.weight"],
                    kernel_size=k,
                    stride=stride,
                    pad=pad,
                    in_channels=in_ch,
                    thresholds=_load_thresholds(prefix, data),
                    binary_input=bool(binary_input),
                )
            )
        elif kind == "dense":
            stages.append(
                FoldedDense(
                    weight_matrix=data[f"{prefix}.weight"],
                    thresholds=_load_thresholds(prefix, data),
                    output_scale=data.get(f"{prefix}.scale"),
                    output_offset=data.get(f"{prefix}.offset"),
                )
            )
        elif kind == "pool":
            window, stride = (int(v) for v in data[f"{prefix}.meta"])
            stages.append(FoldedPool(window=window, stride=stride))
        elif kind == "float_head":
            stages.append(
                FloatDenseHead(data[f"{prefix}.weight"], data.get(f"{prefix}.bias"))
            )
        else:
            raise ValueError(f"unknown stage kind {kind!r}")
    return FoldedBNN(stages, num_classes=int(data["__num_classes__"]))
