"""k-bit uniform quantization with straight-through training.

The functional counterpart of :mod:`repro.finn.mixed_precision` (the
paper's future-work direction): QNN-style layers whose weights and
activations are quantized to ``k`` bits in the forward pass while
gradients flow straight through to latent float parameters.  ``k = 1``
degenerates exactly to the BinaryNet sign arithmetic.

Quantizers follow DoReFa-Net conventions:

* weights: ``q = 2 * quantize_unit((tanh(w) / (2 max|tanh(w)|)) + 0.5) - 1``
  mapped to [-1, 1] on a symmetric grid of ``2^k - 1`` steps;
* activations: clip to [0, 1], quantize to ``2^k - 1`` levels.
"""

from __future__ import annotations

import numpy as np

from ..nn import initializers
from ..nn.layers.base import Layer
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from .binarize import binarize_sign

__all__ = [
    "quantize_unit",
    "quantize_weights",
    "QuantizedConv2D",
    "QuantizedDense",
    "QuantizedActivation",
]


def quantize_unit(x: np.ndarray, bits: int) -> np.ndarray:
    """Uniformly quantize values in [0, 1] to ``2^bits - 1`` steps."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if bits >= 32:
        return x
    levels = (1 << bits) - 1
    return np.round(np.clip(x, 0.0, 1.0) * levels) / levels


def quantize_weights(w: np.ndarray, bits: int) -> np.ndarray:
    """DoReFa weight quantization to a symmetric [-1, 1] grid."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if bits == 1:
        return binarize_sign(w)
    t = np.tanh(w)
    denom = 2.0 * np.max(np.abs(t)) + 1e-12
    unit = t / denom + 0.5
    return 2.0 * quantize_unit(unit, bits) - 1.0


class QuantizedConv2D(Conv2D):
    """Conv2D with k-bit weights in forward, straight-through backward."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        weight_bits: int = 2,
        stride: int = 1,
        pad: int = 0,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        if weight_bits < 1:
            raise ValueError("weight_bits must be >= 1")
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            pad=pad,
            use_bias=False,
            weight_init=initializers.glorot_uniform,
            rng=rng,
            name=name,
        )
        self.weight_bits = weight_bits

    def _swap_in_quantized(self):
        self._latent = self.weight.value
        self.weight.value = quantize_weights(self._latent, self.weight_bits)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._swap_in_quantized()
        try:
            return super().forward(x)
        finally:
            self.weight.value = self._latent

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._swap_in_quantized()
        try:
            return super().backward(grad)
        finally:
            self.weight.value = self._latent

    @property
    def quantized_weight(self) -> np.ndarray:
        return quantize_weights(self.weight.value, self.weight_bits)


class QuantizedDense(Dense):
    """Dense layer with k-bit weights in forward, STE backward."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_bits: int = 2,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        if weight_bits < 1:
            raise ValueError("weight_bits must be >= 1")
        super().__init__(
            in_features,
            out_features,
            use_bias=False,
            weight_init=initializers.glorot_uniform,
            rng=rng,
            name=name,
        )
        self.weight_bits = weight_bits

    def _swap_in_quantized(self):
        self._latent = self.weight.value
        self.weight.value = quantize_weights(self._latent, self.weight_bits)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._swap_in_quantized()
        try:
            return super().forward(x)
        finally:
            self.weight.value = self._latent

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._swap_in_quantized()
        try:
            return super().backward(grad)
        finally:
            self.weight.value = self._latent

    @property
    def quantized_weight(self) -> np.ndarray:
        return quantize_weights(self.weight.value, self.weight_bits)


class QuantizedActivation(Layer):
    """Clip-to-[0,1] + k-bit quantization with a pass-through gradient."""

    def __init__(self, bits: int = 2, name: str | None = None):
        super().__init__(name)
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = ((x >= 0.0) & (x <= 1.0)).astype(x.dtype)
        return quantize_unit(x, self.bits)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask
