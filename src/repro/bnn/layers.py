"""Training-time binarized layers.

These subclass the float layers from :mod:`repro.nn` and binarize the
weights (and, for :class:`BinaryActivation`, the activations) in the
forward pass while keeping real-valued latent weights for the optimizer —
the straight-through-estimator recipe of BinaryNet, which is exactly the
network family FINN deploys.
"""

from __future__ import annotations

import numpy as np

from ..nn import initializers
from ..nn.layers.base import Layer
from ..nn.layers.conv import Conv2D
from ..nn.layers.dense import Dense
from .binarize import binarize_sign, ste_mask

__all__ = ["BinaryConv2D", "BinaryDense", "BinaryActivation"]


class BinaryConv2D(Conv2D):
    """Conv2D whose weights are binarized to {-1, +1} in forward.

    Gradients pass straight through the binarization to the latent real
    weights.  No bias: FINN folds all affine offsets into thresholds.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            pad=pad,
            use_bias=False,
            weight_init=initializers.glorot_uniform,
            rng=rng,
            name=name,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._latent = self.weight.value
        self.weight.value = binarize_sign(self._latent)
        try:
            return super().forward(x)
        finally:
            self.weight.value = self._latent

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # The cached im2col was computed with binarized weights; dW w.r.t.
        # the binarized weight is passed straight through to the latent.
        self._latent = self.weight.value
        self.weight.value = binarize_sign(self._latent)
        try:
            return super().backward(grad)
        finally:
            self.weight.value = self._latent

    @property
    def binary_weight(self) -> np.ndarray:
        """The deployed {-1, +1} weight tensor."""
        return binarize_sign(self.weight.value)


class BinaryDense(Dense):
    """Dense layer with sign-binarized weights and straight-through grads."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        super().__init__(
            in_features,
            out_features,
            use_bias=False,
            weight_init=initializers.glorot_uniform,
            rng=rng,
            name=name,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._latent = self.weight.value
        self.weight.value = binarize_sign(self._latent)
        try:
            return super().forward(x)
        finally:
            self.weight.value = self._latent

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._latent = self.weight.value
        self.weight.value = binarize_sign(self._latent)
        try:
            return super().backward(grad)
        finally:
            self.weight.value = self._latent

    @property
    def binary_weight(self) -> np.ndarray:
        return binarize_sign(self.weight.value)


class BinaryActivation(Layer):
    """sign() activation with the hard-tanh straight-through gradient."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = ste_mask(x)
        return binarize_sign(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask
