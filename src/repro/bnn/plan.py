"""Compiled FoldedBNN inference: the packed dataflow, preplanned end-to-end.

:meth:`repro.bnn.FoldedBNN.compile_inference` returns a
:class:`CompiledBNNPlan` — the BNN-side counterpart of
:meth:`repro.nn.Sequential.compile_inference` (PR 5's float
``InferenceEngine``).  The uncompiled :meth:`FoldedBNN.forward` is
correct but re-derives everything per call: fresh im2col gathers,
fresh kernel accumulators, fresh threshold intermediates, per-call
backend resolution.  The plan hoists all of that to compile time:

* **Fold-time weight layout** — every matmul stage resolves its backend
  once (``"auto"`` runs the autotuner with the real micro-batch M) and
  prepares its weight words once, shared with the stage's own prep cache.
* **Preallocated buffers** — im2col/pack rows, integer accumulators,
  threshold scratch and pool outputs are allocated per layer for a fixed
  micro-batch and reused across calls; the odd tail chunk gets its own
  (smaller) buffer set.  Per-stage gathers write straight into the
  reusable rows buffers instead of materializing strided copies.
* **Fused pack→GEMM→threshold hops** — thresholding runs as three
  ``out=``-ed ufuncs on reused scratch instead of allocating the
  broadcast chain, and packed max-pool ORs into its output buffer.
* **Eval-mode hygiene** — compilation is inference-only: no caches grow
  with call count, no RNG is consumed, and two consecutive calls on the
  same plan touch exactly the same memory (buffer-reuse determinism,
  verified in ``tests/bnn/test_plan.py``).

Bit-identity contract (same as the float engine): integer kernel stages
are exact under any backend/threading, and the one float GEMM (the
real-valued first conv) issues the identical BLAS call per chunk, so
``plan.forward(x)`` equals ``FoldedBNN.forward(x, batch_size=B)``
bit-for-bit whenever ``micro_batch == B`` — BLAS results may depend on
the GEMM's M dimension, so matched chunking is the stable shard
boundary.

Tracing: the plan keeps the legacy per-stage ``bnn.<label>`` span names
(``repro trace`` keys its Eqs. (3)-(5) residuals off them) and adds
``bnn.plan.compile`` / ``bnn.plan.forward`` spans around its own phases;
the threaded kernel reports a ``kernel.threads`` gauge per matmul.

Topology coverage: the fused fast path covers the packed pipeline that
:func:`repro.bnn.fold_network` emits for CNV-style networks (float-input
first conv, pad-free packed inner convs, packed pools, packed dense
stages, affine or float-head output).  A stage that breaks the packed
chain mid-network ends the fused prefix; the remaining stages run
through the legacy per-stage calls inside the same chunk loop, keeping
results identical for *any* foldable topology.  ``packed=False``
networks do not compile (:class:`PlanUnsupported`) — the float ±1
datapath is the equivalence-testing path and stays uncompiled.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..nn import functional as F
from .packing import PackedMaps, PackedRows
from .thresholding import ChannelThresholds

__all__ = ["CompiledBNNPlan", "PlanUnsupported"]


class PlanUnsupported(TypeError):
    """The folded network cannot be compiled (e.g. ``packed=False``)."""


class _BufferPool:
    """Preallocated named buffers keyed by (stage, role, shape, dtype).

    Full chunks and the tail chunk have different leading dimensions, so
    each keeps its own entry; the pool is bounded by (stages × roles × 2).
    """

    def __init__(self):
        self._buffers: dict = {}

    def get(self, stage: int, role: str, shape: tuple, dtype, zero: bool = False):
        key = (stage, role, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf


class _Thresholds:
    """Compile-time view of a stage's ChannelThresholds for the fused hop.

    ``apply_bits`` decides ``sign * (acc - tau) >= 0`` in float64.  Both
    compiled rewrites below are exact transliterations of that decision,
    not approximations:

    * **Integer accumulators** (every binary matmul stage): ``acc`` is an
      exact integer, so ``acc >= tau`` iff ``acc >= ceil(tau)`` and
      ``acc <= tau`` iff ``acc < floor(tau) + 1``.  One int64 broadcast
      compare against a precomputed per-channel bound, then a flip of the
      negative-sign columns, replaces the subtract/multiply/compare chain
      — the threshold hop's memory traffic drops from three accumulator
      passes to one.
    * **Float accumulators** (the real-valued first conv): multiplying by
      the exact ±1 ``sign`` commutes with the compare, so
      ``sign*(acc - tau) >= 0`` iff ``sign*acc >= sign*tau`` (IEEE
      subtraction of representable doubles is zero only on exact
      equality and never flips sign), folding the subtract pass into a
      precomputed comparand.
    """

    def __init__(self, thresholds: ChannelThresholds):
        self.tau = thresholds.tau[None, :]
        self.sign = thresholds.sign[None, :]
        self.const_mask = thresholds.sign == 0
        self.has_const = bool(self.const_mask.any())
        self.const_bits = (thresholds.constant > 0)[self.const_mask]
        neg = thresholds.sign < 0
        self.neg_mask = neg
        self.has_neg = bool(neg.any())
        bound = np.where(neg, np.floor(thresholds.tau) + 1.0, np.ceil(thresholds.tau))
        # Constant channels are overwritten below; zero their bound so the
        # int64 cast never sees the fold's placeholder values.
        self.int_bound = np.where(
            self.const_mask, 0.0, bound
        ).astype(np.int64)[None, :]
        self.tau_signed = (thresholds.tau * thresholds.sign)[None, :]
        self._epilogue_cache: dict = {}
        if self.has_const:
            # Byte masks to stamp constant channels onto already-packed
            # words (MSB-first bit order matches np.packbits).
            const_vals = np.zeros(self.const_mask.shape, dtype=np.bool_)
            const_vals[self.const_mask] = self.const_bits
            self.word_and = np.bitwise_not(np.packbits(self.const_mask))
            self.word_or = np.packbits(const_vals)

    def epilogue_args(self, dtype) -> tuple:
        """Comparands for a kernel's fused threshold epilogue.

        Returns ``(bound, neg_mask)`` with the integer bound cast to the
        kernel's GEMM dtype — exact, since ``|bound| <= n + 1`` and f32
        planes are only used below the f32 exact-integer limit.
        """
        key = np.dtype(dtype)
        cached = self._epilogue_cache.get(key)
        if cached is None:
            bound = np.ascontiguousarray(self.int_bound[0].astype(key))
            cached = self._epilogue_cache[key] = (
                bound, self.neg_mask if self.has_neg else None
            )
        return cached

    def finish_words(self, words: np.ndarray) -> np.ndarray:
        """Stamp constant channels onto packed words from a fused epilogue."""
        if self.has_const:
            np.bitwise_and(words, self.word_and[None, :], out=words)
            np.bitwise_or(words, self.word_or[None, :], out=words)
        return words

    def signed_weight_t(self, weight_matrix: np.ndarray) -> np.ndarray:
        """``(sign * W)^T`` for the sign-folded float GEMM.

        Negating weight rows is IEEE-exact (products and partial sums of
        the negated row are exact negations of the originals), so the
        GEMM emits ``sign * acc`` bitwise and the threshold hop becomes
        the single compare against ``tau_signed`` — the multiply pass
        disappears from the runtime entirely.
        """
        return np.ascontiguousarray((weight_matrix * self.sign.T).T)

    def to_words(
        self,
        acc: np.ndarray,
        pool: _BufferPool,
        stage: int,
        presigned: bool = False,
    ) -> np.ndarray:
        """Fused accumulator -> packed bits, identical to ``apply_bits``.

        ``presigned`` marks a float accumulator that already carries the
        sign fold (see :meth:`signed_weight_t`).
        """
        decided = pool.get(stage, "bits", acc.shape, np.bool_)
        if acc.dtype.kind in "iu":
            np.greater_equal(acc, self.int_bound, out=decided)
            if self.has_neg:
                decided[:, self.neg_mask] ^= True
        elif presigned:
            np.greater_equal(acc, self.tau_signed, out=decided)
        else:
            scratch = pool.get(stage, "thr", acc.shape, np.float64)
            np.multiply(acc, self.sign, out=scratch)
            np.greater_equal(scratch, self.tau_signed, out=decided)
        if self.has_const:
            decided[:, self.const_mask] = self.const_bits
        return np.packbits(decided, axis=1)


def _packed_pool_or(
    words: np.ndarray, win: int, s: int, oh: int, ow: int, out: np.ndarray
) -> np.ndarray:
    """Window-wise bitwise OR into ``out`` via per-offset slice ORs.

    One strided binary OR per window offset beats the 6-d
    ``bitwise_or.reduce`` over as_strided windows by ~7x on the CNV pool
    shapes — the ufunc inner loop stays on 4-d views with a contiguous
    last axis instead of rank-6 gather strides.
    """
    offsets = [(dy, dx) for dy in range(win) for dx in range(win)]

    def view(dy: int, dx: int) -> np.ndarray:
        return words[
            :, dy : dy + s * (oh - 1) + 1 : s, dx : dx + s * (ow - 1) + 1 : s
        ]

    if len(offsets) == 1:
        out[...] = view(*offsets[0])
        return out
    np.bitwise_or(view(*offsets[0]), view(*offsets[1]), out=out)
    for dy, dx in offsets[2:]:
        np.bitwise_or(out, view(dy, dx), out=out)
    return out


class CompiledBNNPlan:
    """A preplanned, buffer-reusing executor for one :class:`FoldedBNN`.

    Build via :meth:`repro.bnn.FoldedBNN.compile_inference`.  Not
    thread-safe: each plan owns one set of buffers, so give each serving
    thread (or replica) its own plan — the cascade server's single BNN
    worker thread is the intended consumer.

    Parameters
    ----------
    folded:
        The folded network to compile (must have ``packed=True``).
    micro_batch:
        Fixed chunk size the buffers are sized for.  Also the
        bit-stability boundary: output equals
        ``folded.forward(x, batch_size=micro_batch)`` exactly.
    backend:
        Kernel backend override for the fused matmul stages; ``None``
        defers to the folded network's backend (then the
        ``REPRO_BNN_BACKEND`` env / ``"auto"`` chain).
    threads:
        Thread-count override applied when a stage's backend resolves to
        the ``threaded`` family (pins ``threaded@<threads>``).
    """

    def __init__(
        self,
        folded,
        micro_batch: int = 64,
        backend: str | None = None,
        threads: int | None = None,
    ):
        from .inference import FloatDenseHead, FoldedConv, FoldedDense, FoldedPool

        if micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        if not folded.packed:
            raise PlanUnsupported(
                "compile_inference requires a packed-pipeline FoldedBNN "
                "(packed=False is the float equivalence path)"
            )
        self._types = (FoldedConv, FoldedDense, FoldedPool, FloatDenseHead)
        self.folded = folded
        self.micro_batch = int(micro_batch)
        self.backend = backend if backend is not None else folded.backend
        self.threads = threads
        self.stages = list(folded.stages)
        self.labels = folded.stage_labels
        self.emit = folded._emit_plan()
        self._pool = _BufferPool()
        self._ops: list[tuple] | None = None  # resolved lazily at first chunk
        self._geometry: tuple | None = None
        self._thresholds = [
            _Thresholds(s.thresholds)
            if isinstance(s, (FoldedConv, FoldedDense)) and s.thresholds is not None
            else None
            for s in self.stages
        ]

    # -- compile-time resolution -------------------------------------------

    def _resolve_backend(self, m: int, n_out: int, n_bits: int) -> str:
        from .kernels import default_backend, select_backend

        name = self.backend or default_backend()
        if name == "auto":
            name = select_backend(m, n_out, n_bits)
        if self.threads is not None and (
            name == "threaded" or name.startswith("threaded@")
        ):
            name = f"threaded@{int(self.threads)}"
        return name

    def _prep_for(self, stage, name: str, weight_words: np.ndarray, layout_key: str, n_bits: int):
        """Weight prep shared with the stage's own per-backend cache."""
        from .kernels import get_kernel

        kernel = get_kernel(name)
        key = (name, layout_key)
        prep = stage._prep_cache.get(key)
        if prep is None:
            prep = kernel.prepare(weight_words, n_bits)
            stage._prep_cache[key] = prep
        return kernel, prep

    def _compile(self, chunk_shape: tuple) -> None:
        """Resolve per-stage ops for the input geometry of the first chunk.

        Runs once per geometry (re-runs only if the spatial input shape
        changes); sizes are derived from the full micro-batch so the
        autotuner sees the M it will actually serve.
        """
        from .inference import FloatDenseHead, FoldedConv, FoldedDense, FoldedPool

        _, c_in, h_in, w_in = chunk_shape
        nb = self.micro_batch
        ops: list[tuple] = []
        # Symbolic representation flowing between stages:
        # ("float", C, H, W) | ("maps", H, W, C) | ("rows", n, layout) | ("flat",)
        repr_state: tuple = ("float", c_in, h_in, w_in)
        fused = True
        for i, stage in enumerate(self.stages):
            emit = self.emit[i]
            if not fused:
                ops.append(("legacy", None))
                continue
            if isinstance(stage, FoldedConv):
                if repr_state[0] == "float" and not stage.binary_input:
                    _, c, h, w = repr_state
                    oh = F.conv_output_size(h, stage.kernel_size, stage.stride, stage.pad)
                    ow = F.conv_output_size(w, stage.kernel_size, stage.stride, stage.pad)
                    if emit:
                        w_signed_t = self._thresholds[i].signed_weight_t(
                            stage.weight_matrix
                        )
                        ops.append(("conv_float", (c, h, w, oh, ow, w_signed_t)))
                        bc = -(-stage.out_channels // 8)
                        repr_state = ("maps", oh, ow, stage.out_channels, bc)
                        continue
                elif repr_state[0] == "maps" and stage.binary_input and stage.pad == 0:
                    _, h, w, c, bc_in = repr_state
                    if c == stage.in_channels and emit:
                        oh = F.conv_output_size(h, stage.kernel_size, stage.stride, 0)
                        ow = F.conv_output_size(w, stage.kernel_size, stage.stride, 0)
                        name = self._resolve_backend(
                            nb * oh * ow, stage.out_channels, stage.fan_in
                        )
                        ops.append(("conv_packed", (h, w, oh, ow, bc_in, name)))
                        bc = -(-stage.out_channels // 8)
                        repr_state = ("maps", oh, ow, stage.out_channels, bc)
                        continue
                fused = False
                ops.append(("legacy", None))
            elif isinstance(stage, FoldedPool):
                if repr_state[0] == "maps":
                    _, h, w, c, bc = repr_state
                    oh = (h - stage.window) // stage.stride + 1
                    ow = (w - stage.window) // stage.stride + 1
                    if oh > 0 and ow > 0:
                        ops.append(("pool_packed", (h, w, oh, ow, bc)))
                        repr_state = ("maps", oh, ow, c, bc)
                        continue
                fused = False
                ops.append(("legacy", None))
            elif isinstance(stage, FoldedDense):
                layout = None
                if repr_state[0] == "maps":
                    _, h, w, c, bc = repr_state
                    layout = ("hwc", h, w, c)
                elif repr_state[0] == "rows":
                    layout = repr_state[1]
                else:
                    fused = False
                    ops.append(("legacy", None))
                    continue
                weight_words, layout_key = stage._weights_for_layout(layout)
                name = self._resolve_backend(nb, stage.out_features, stage.fan_in)
                if stage.thresholds is not None and emit:
                    ops.append(("dense_pack", (layout, layout_key, name)))
                    repr_state = ("rows", None)
                elif stage.thresholds is None:
                    ops.append(("dense_affine", (layout, layout_key, name)))
                    repr_state = ("flat",)
                else:
                    # Thresholding dense that must emit float (terminal or
                    # consumer can't take bits): the legacy call handles it.
                    ops.append(("legacy", None))
                    fused = False
            elif isinstance(stage, FloatDenseHead):
                ops.append(("legacy", None))
                fused = False
            else:  # pragma: no cover - fold_network emits only known stages
                ops.append(("legacy", None))
                fused = False
        self._ops = ops
        self._geometry = (c_in, h_in, w_in)

    # -- runtime ------------------------------------------------------------

    def _legacy_stage(self, i: int, x):
        """One stage through the uncompiled code path (suffix stages)."""
        from .inference import FloatDenseHead, FoldedConv, FoldedDense

        stage = self.stages[i]
        if isinstance(stage, (FoldedDense, FloatDenseHead)):
            if isinstance(x, PackedMaps):
                x = x.flatten_rows()
            elif isinstance(x, np.ndarray) and x.ndim == 4:
                x = x.reshape(x.shape[0], -1)
        if isinstance(stage, (FoldedConv, FoldedDense)):
            return stage(x, emit_packed=self.emit[i], backend=self.backend)
        return stage(x)

    def _kernel_call(self, name: str, kernel, a_words, prep, n_bits: int, out):
        if not obs.enabled():
            return kernel.matmul(a_words, prep, n_bits, out=out)
        with obs.trace_span(
            "kernel." + name, category="kernel",
            m=int(a_words.shape[0]), n_out=int(out.shape[1]), n_bits=int(n_bits),
        ):
            return kernel.matmul(a_words, prep, n_bits, out=out)

    def _matmul_to_words(
        self, i: int, name: str, kernel, a_words, prep, stage, n_out: int
    ) -> np.ndarray:
        """Binary matmul + threshold for one stage: fused when the kernel
        offers a threshold epilogue (``matmul_bits``) and the output fits
        one column tile, else matmul into the int64 accumulator followed
        by the pooled ``to_words`` hop.  Both paths are bit-identical."""
        pool = self._pool
        thr = self._thresholds[i]
        m = a_words.shape[0]
        if getattr(kernel, "matmul_bits", None) is not None and n_out <= kernel.col_tile:
            words = pool.get(i, "words", (m, -(-n_out // 8)), np.uint8)
            bound, neg_mask = thr.epilogue_args(prep[0].dtype)
            if not obs.enabled():
                kernel.matmul_bits(a_words, prep, stage.fan_in, bound, neg_mask, words)
            else:
                with obs.trace_span(
                    "kernel." + name, category="kernel",
                    m=int(m), n_out=int(n_out), n_bits=int(stage.fan_in), fused=True,
                ):
                    kernel.matmul_bits(
                        a_words, prep, stage.fan_in, bound, neg_mask, words
                    )
            return thr.finish_words(words)
        acc = pool.get(i, "acc", (m, n_out), np.int64)
        self._kernel_call(name, kernel, a_words, prep, stage.fan_in, acc)
        return thr.to_words(acc, pool, i)

    def _run_chunk(self, x: np.ndarray):
        pool = self._pool
        for i, (op, params) in enumerate(self._ops):
            stage = self.stages[i]
            with obs.trace_span("bnn." + self.labels[i], category="bnn"):
                if op == "conv_float":
                    c, h, w, oh, ow, w_signed_t = params
                    n = x.shape[0]
                    k, s, p = stage.kernel_size, stage.stride, stage.pad
                    if p:
                        # Borders of the padded buffer are zero-filled at
                        # allocation and never written again.
                        xp = pool.get(i, "pad", (n, c, h + 2 * p, w + 2 * p), x.dtype, zero=True)
                        xp[:, :, p : p + h, p : p + w] = x
                    else:
                        xp = x
                    sn, sc, sh, sw = xp.strides
                    windows = np.lib.stride_tricks.as_strided(
                        xp, shape=(n, c, oh, ow, k, k),
                        strides=(sn, sc, sh * s, sw * s, sh, sw), writeable=False,
                    )
                    m = n * oh * ow
                    cols = pool.get(i, "cols", (m, c * k * k), x.dtype)
                    cols.reshape(n, oh, ow, c, k, k)[...] = windows.transpose(0, 2, 3, 1, 4, 5)
                    acc = pool.get(i, "accf", (m, stage.out_channels), np.float64)
                    np.matmul(cols, w_signed_t, out=acc)
                    words = self._thresholds[i].to_words(acc, pool, i, presigned=True)
                    x = PackedMaps(words.reshape(n, oh, ow, -1), stage.out_channels)
                elif op == "conv_packed":
                    h, w, oh, ow, bc_in, name = params
                    words_in = x.words
                    n = words_in.shape[0]
                    k, s = stage.kernel_size, stage.stride
                    sn, sh, sw, sb = words_in.strides
                    windows = np.lib.stride_tricks.as_strided(
                        words_in, shape=(n, oh, ow, k, k, bc_in),
                        strides=(sn, sh * s, sw * s, sh, sw, sb), writeable=False,
                    )
                    m = n * oh * ow
                    rows = pool.get(i, "rows", (m, k * k * bc_in), np.uint8)
                    rows.reshape(n, oh, ow, k, k, bc_in)[...] = windows
                    kernel, prep = self._prep_for(
                        stage, name, stage._spatial_weight_words(), "spatial", stage.fan_in
                    )
                    words = self._matmul_to_words(
                        i, name, kernel, rows, prep, stage, stage.out_channels
                    )
                    x = PackedMaps(words.reshape(n, oh, ow, -1), stage.out_channels)
                elif op == "pool_packed":
                    h, w, oh, ow, bc = params
                    words_in = x.words
                    n = words_in.shape[0]
                    win, s = stage.window, stage.stride
                    out = pool.get(i, "pool", (n, oh, ow, bc), np.uint8)
                    x = PackedMaps(
                        _packed_pool_or(words_in, win, s, oh, ow, out), x.channels
                    )
                elif op in ("dense_pack", "dense_affine"):
                    layout, layout_key, name = params
                    rows_in = x.flatten_rows() if isinstance(x, PackedMaps) else x
                    weight_words, _ = stage._weights_for_layout(layout)
                    kernel, prep = self._prep_for(
                        stage, name, weight_words, layout_key, stage.fan_in
                    )
                    m = rows_in.words.shape[0]
                    if op == "dense_pack":
                        words = self._matmul_to_words(
                            i, name, kernel, rows_in.words, prep, stage,
                            stage.out_features,
                        )
                        x = PackedRows(words, stage.out_features)
                    else:
                        acc = pool.get(i, "acc", (m, stage.out_features), np.int64)
                        self._kernel_call(
                            name, kernel, rows_in.words, prep, stage.fan_in, acc
                        )
                        out = pool.get(i, "out", (m, stage.out_features), np.float64)
                        out[...] = acc
                        if stage.output_scale is not None:
                            np.multiply(out, stage.output_scale, out=out)
                            np.add(out, stage.output_offset, out=out)
                        x = out
                else:  # "legacy"
                    x = self._legacy_stage(i, x)
        return x

    def forward(self, images: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Raw output scores, bit-identical to the uncompiled forward.

        ``batch_size`` is accepted for signature compatibility but must
        match the plan's ``micro_batch`` when given — chunking is part of
        the compiled layout (and of the bit-identity contract).
        """
        if batch_size is not None and int(batch_size) != self.micro_batch:
            raise ValueError(
                f"plan compiled for micro_batch={self.micro_batch}, "
                f"got batch_size={batch_size}; recompile instead"
            )
        images = np.asarray(images)
        if images.ndim != 4:
            raise ValueError(f"expected NCHW images, got shape {images.shape}")
        with obs.trace_span(
            "bnn.plan.forward", category="bnn",
            images=int(images.shape[0]), micro_batch=self.micro_batch,
        ):
            chunk_shape = (
                min(self.micro_batch, images.shape[0]),
            ) + images.shape[1:]
            if self._ops is None or self._geometry != images.shape[1:]:
                with obs.trace_span("bnn.plan.compile", category="bnn"):
                    if self._geometry is not None and self._geometry != images.shape[1:]:
                        self._pool = _BufferPool()  # geometry changed: resize
                    self._compile(chunk_shape)
            result: np.ndarray | None = None
            for start in range(0, images.shape[0], self.micro_batch):
                out = self._run_chunk(images[start : start + self.micro_batch])
                out = np.asarray(out)
                if result is None:
                    result = np.empty(
                        (images.shape[0],) + out.shape[1:], dtype=out.dtype
                    )
                # Copy out of the reused buffer before the next chunk
                # overwrites it.
                result[start : start + out.shape[0]] = out
            if result is None:
                raise ValueError("cannot run inference on an empty batch")
        return result

    def class_scores(self, images: np.ndarray) -> np.ndarray:
        """Scores truncated to the real classes (FINN pads the last layer)."""
        return self.forward(images)[:, : self.folded.num_classes]

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.class_scores(images).argmax(axis=1)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        return self.forward(images)
