"""Binarized neural-network substrate (BinaryNet arithmetic, FINN datapath).

Training uses straight-through estimators over latent real weights
(:mod:`repro.bnn.layers`); deployment folds BatchNorm+sign into integer
thresholds (:mod:`repro.bnn.thresholding`) and evaluates convolutions as
bit-packed XNOR-popcount products (:mod:`repro.bnn.xnor`), yielding a
bit-exact functional model of the FPGA datapath
(:mod:`repro.bnn.inference`).
"""

from .binarize import binarize_sign, clip_weights, ste_mask
from .export import load_folded_bnn, save_folded_bnn
from .inference import (
    FloatDenseHead,
    FoldedBNN,
    FoldedConv,
    FoldedDense,
    FoldedPool,
    fold_network,
)
from .layers import BinaryActivation, BinaryConv2D, BinaryDense
from .quantize import (
    QuantizedActivation,
    QuantizedConv2D,
    QuantizedDense,
    quantize_unit,
    quantize_weights,
)
from .thresholding import ChannelThresholds, fold_batchnorm
from .xnor import binary_dot, pack_pm1, unpack_pm1, xnor_popcount_matmul

__all__ = [
    "binarize_sign",
    "ste_mask",
    "clip_weights",
    "BinaryConv2D",
    "BinaryDense",
    "BinaryActivation",
    "ChannelThresholds",
    "fold_batchnorm",
    "pack_pm1",
    "unpack_pm1",
    "xnor_popcount_matmul",
    "binary_dot",
    "FoldedBNN",
    "FoldedConv",
    "FoldedDense",
    "FoldedPool",
    "FloatDenseHead",
    "fold_network",
    "save_folded_bnn",
    "load_folded_bnn",
    "QuantizedConv2D",
    "QuantizedDense",
    "QuantizedActivation",
    "quantize_unit",
    "quantize_weights",
]
