"""Binarized neural-network substrate (BinaryNet arithmetic, FINN datapath).

Training uses straight-through estimators over latent real weights
(:mod:`repro.bnn.layers`); deployment folds BatchNorm+sign into integer
thresholds (:mod:`repro.bnn.thresholding`) and evaluates convolutions as
bit-packed XNOR-popcount products (:mod:`repro.bnn.xnor`), yielding a
bit-exact functional model of the FPGA datapath
(:mod:`repro.bnn.inference`).
"""

from .binarize import binarize_sign, clip_weights, ste_mask
from .bitops import popcount, popcount_rows
from .export import load_folded_bnn, save_folded_bnn
from .inference import (
    ENV_COMPILE,
    FloatDenseHead,
    FoldedBNN,
    FoldedConv,
    FoldedDense,
    FoldedPool,
    fold_network,
)
from .kernels import (
    ENV_BACKEND,
    ENV_THREADS,
    BinaryKernel,
    available_backends,
    default_backend,
    get_kernel,
    register_kernel,
    resolve_bnn_threads,
    select_backend,
)
from .packing import PackedMaps, PackedRows, maxpool_packed
from .plan import CompiledBNNPlan, PlanUnsupported
from .layers import BinaryActivation, BinaryConv2D, BinaryDense
from .quantize import (
    QuantizedActivation,
    QuantizedConv2D,
    QuantizedDense,
    quantize_unit,
    quantize_weights,
)
from .thresholding import ChannelThresholds, fold_batchnorm
from .xnor import binary_dot, pack_pm1, unpack_pm1, xnor_popcount_matmul

__all__ = [
    "binarize_sign",
    "ste_mask",
    "clip_weights",
    "popcount",
    "popcount_rows",
    "BinaryKernel",
    "register_kernel",
    "get_kernel",
    "available_backends",
    "default_backend",
    "select_backend",
    "resolve_bnn_threads",
    "ENV_BACKEND",
    "ENV_THREADS",
    "ENV_COMPILE",
    "CompiledBNNPlan",
    "PlanUnsupported",
    "PackedRows",
    "PackedMaps",
    "maxpool_packed",
    "BinaryConv2D",
    "BinaryDense",
    "BinaryActivation",
    "ChannelThresholds",
    "fold_batchnorm",
    "pack_pm1",
    "unpack_pm1",
    "xnor_popcount_matmul",
    "binary_dot",
    "FoldedBNN",
    "FoldedConv",
    "FoldedDense",
    "FoldedPool",
    "FloatDenseHead",
    "fold_network",
    "save_folded_bnn",
    "load_folded_bnn",
    "QuantizedConv2D",
    "QuantizedDense",
    "QuantizedActivation",
    "quantize_unit",
    "quantize_weights",
]
