"""Folded BNN inference — the functional model of FINN's datapath.

:func:`fold_network` converts a *trained* binarized Sequential (built from
``BinaryConv2D``/``BinaryDense`` + ``BatchNorm`` + ``BinaryActivation`` +
``MaxPool2D``/``Flatten`` layers) into a :class:`FoldedBNN` that runs the
deployment arithmetic:

* first layer: real-valued inputs times {-1,+1} weights ("regular
  operations" in the paper), thresholded to {-1,+1};
* inner layers: bit-packed binary matrix products (pluggable backends,
  :mod:`repro.bnn.kernels`) followed by integer threshold comparison;
* last layer: binary accumulation with *no* activation — the raw class
  scores, to which the trained BatchNorm affine is applied so scores
  keep the scale the DMU was trained on.

Activations stay **bit-packed between stages** (:mod:`repro.bnn.packing`):
thresholds emit packed words directly, convolution unrolling is a packed
byte gather, and max pooling is a bitwise OR — unpacking happens only at
the network boundary, mirroring FINN's on-chip dataflow.  Every stage
still accepts plain ±1 float arrays when called standalone.

The folded network's class decisions are bit-exact equal to the eval-mode
training network (verified by the test suite), independent of the kernel
backend and of whether the packed pipeline is active.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..nn import functional as F
from ..nn.layers.batchnorm import BatchNorm
from ..nn.layers.dense import Dense
from ..nn.layers.flatten import Flatten
from ..nn.layers.pool import MaxPool2D
from ..nn.network import Sequential
from .kernels import default_backend, get_kernel, select_backend
from .layers import BinaryActivation, BinaryConv2D, BinaryDense
from .packing import PackedMaps, PackedRows, conv_weight_words, dense_weight_words_hwc, maxpool_packed
from .thresholding import ChannelThresholds, fold_batchnorm
from .xnor import pack_pm1

__all__ = [
    "FoldedConv",
    "FoldedDense",
    "FoldedPool",
    "FloatDenseHead",
    "FoldedBNN",
    "fold_network",
    "ENV_COMPILE",
]

#: Environment variable gating the automatic use of the compiled plan in
#: :meth:`FoldedBNN.forward` ("0"/"off"/"false"/"no" disables it).
ENV_COMPILE = "REPRO_BNN_COMPILE"


def _auto_compile_enabled() -> bool:
    return os.environ.get(ENV_COMPILE, "").strip().lower() not in (
        "0", "off", "false", "no",
    )


def _kernel_matmul(
    prep_cache: dict,
    weight_words: np.ndarray,
    layout_key: str,
    a_words: np.ndarray,
    n_bits: int,
    backend: str | None,
) -> np.ndarray:
    """Run one backend matmul, caching per-(backend, layout) weight prep."""
    name = backend or default_backend()
    if name == "auto":
        name = select_backend(a_words.shape[0], weight_words.shape[0], n_bits)
    kernel = get_kernel(name)
    key = (name, layout_key)
    prep = prep_cache.get(key)
    if prep is None:
        prep = kernel.prepare(weight_words, n_bits)
        prep_cache[key] = prep
    if not obs.enabled():
        return kernel.matmul(a_words, prep, n_bits)
    with obs.trace_span(
        "kernel." + name, category="kernel",
        m=int(a_words.shape[0]), n_out=int(weight_words.shape[0]), n_bits=int(n_bits),
    ):
        return kernel.matmul(a_words, prep, n_bits)


@dataclass
class FoldedConv:
    """A convolution engine: binary weights + thresholds."""

    weight_matrix: np.ndarray  # (OD, ID*K*K) in {-1,+1}
    kernel_size: int
    stride: int
    pad: int
    in_channels: int
    thresholds: ChannelThresholds
    binary_input: bool
    packed_weight: np.ndarray = field(init=False, repr=False)
    fan_in: int = field(init=False)
    _prep_cache: dict = field(init=False, default_factory=dict, repr=False)
    _spatial_weight: np.ndarray | None = field(init=False, default=None, repr=False)

    def __post_init__(self):
        self.packed_weight, self.fan_in = pack_pm1(self.weight_matrix, validate=False)

    @property
    def out_channels(self) -> int:
        return int(self.weight_matrix.shape[0])

    def _spatial_weight_words(self) -> np.ndarray:
        if self._spatial_weight is None:
            self._spatial_weight = conv_weight_words(
                self.weight_matrix, self.in_channels, self.kernel_size
            )
        return self._spatial_weight

    def __call__(
        self,
        x: np.ndarray | PackedMaps,
        emit_packed: bool = False,
        backend: str | None = None,
    ) -> np.ndarray | PackedMaps:
        k = self.kernel_size
        if isinstance(x, PackedMaps):
            if not self.binary_input:
                raise TypeError("packed input fed to a real-valued-input engine")
            if self.pad != 0:
                raise ValueError("packed conv path requires pad == 0 (no ±1 zero-pad)")
            if x.channels != self.in_channels:
                raise ValueError(f"expected {self.in_channels} channels, got {x.channels}")
            n = x.batch
            oh = F.conv_output_size(x.height, k, self.stride, 0)
            ow = F.conv_output_size(x.width, k, self.stride, 0)
            rows = F.im2col_packed(x.words, k, k, self.stride)
            acc = _kernel_matmul(
                self._prep_cache, self._spatial_weight_words(), "spatial",
                rows, self.fan_in, backend,
            )
        else:
            n = x.shape[0]
            oh = F.conv_output_size(x.shape[2], k, self.stride, self.pad)
            ow = F.conv_output_size(x.shape[3], k, self.stride, self.pad)
            cols = F.im2col(x, k, k, self.stride, self.pad)
            if self.binary_input:
                packed, bits = pack_pm1(cols, validate=False)
                acc = _kernel_matmul(
                    self._prep_cache, self.packed_weight, "plain",
                    packed, bits, backend,
                )
            else:
                acc = cols @ self.weight_matrix.T
        if emit_packed:
            words = self.thresholds.apply_bits(acc)
            return PackedMaps(words.reshape(n, oh, ow, -1), self.out_channels)
        if acc.dtype != np.float64:
            acc = acc.astype(np.float64)
        acc = acc.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        return self.thresholds.apply(acc, channel_axis=1)


@dataclass
class FoldedDense:
    """A fully-connected engine: binary weights + thresholds or affine out."""

    weight_matrix: np.ndarray  # (OD, ID) in {-1,+1}
    thresholds: ChannelThresholds | None
    output_scale: np.ndarray | None = None   # affine applied when not thresholding
    output_offset: np.ndarray | None = None
    packed_weight: np.ndarray = field(init=False, repr=False)
    fan_in: int = field(init=False)
    _prep_cache: dict = field(init=False, default_factory=dict, repr=False)
    _layout_weights: dict = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self):
        self.packed_weight, self.fan_in = pack_pm1(self.weight_matrix, validate=False)

    @property
    def out_features(self) -> int:
        return int(self.weight_matrix.shape[0])

    def _weights_for_layout(self, layout: tuple | None) -> tuple[np.ndarray, str]:
        if layout is None:
            return self.packed_weight, "plain"
        tag, h, w, c = layout
        if tag != "hwc":
            raise ValueError(f"unsupported input layout {layout!r}")
        words = self._layout_weights.get(layout)
        if words is None:
            words = dense_weight_words_hwc(self.weight_matrix, h, w, c)
            self._layout_weights[layout] = words
        return words, f"hwc:{h}x{w}x{c}"

    def __call__(
        self,
        x: np.ndarray | PackedRows,
        emit_packed: bool = False,
        backend: str | None = None,
    ) -> np.ndarray | PackedRows:
        if isinstance(x, PackedRows):
            if x.n != self.fan_in:
                raise ValueError(f"expected fan-in {self.fan_in}, got {x.n}")
            weight_words, layout_key = self._weights_for_layout(x.layout)
            acc = _kernel_matmul(
                self._prep_cache, weight_words, layout_key,
                x.words, self.fan_in, backend,
            )
        else:
            packed, bits = pack_pm1(x, validate=False)
            acc = _kernel_matmul(
                self._prep_cache, self.packed_weight, "plain",
                packed, bits, backend,
            )
        if self.thresholds is not None:
            if emit_packed:
                return PackedRows(self.thresholds.apply_bits(acc), self.out_features)
            return self.thresholds.apply(acc.astype(np.float64), channel_axis=1)
        acc = acc.astype(np.float64)
        if self.output_scale is not None:
            acc = acc * self.output_scale + self.output_offset
        return acc


@dataclass
class FoldedPool:
    """Max pooling over {-1,+1} maps — a boolean OR in FINN hardware.

    Packed inputs stay packed: pooling is then a literal bitwise OR over
    the window, matching the hardware datapath.  The float fallback keeps
    one :class:`MaxPool2D` for the life of the stage instead of building
    a fresh layer per invocation.
    """

    window: int
    stride: int
    _pool: MaxPool2D = field(init=False, repr=False)

    def __post_init__(self):
        self._pool = MaxPool2D(self.window, self.stride)

    def __call__(self, x: np.ndarray | PackedMaps) -> np.ndarray | PackedMaps:
        if isinstance(x, PackedMaps):
            return maxpool_packed(x, self.window, self.stride)
        # windows().max avoids MaxPool2D.forward's argmax bookkeeping (only
        # needed for backward) and leaves no cache alive between batches.
        return self._pool._windows(x).max(axis=(4, 5))


@dataclass
class FloatDenseHead:
    """Full-precision output layer of a *partially-binarised* network.

    The paper (Section II) notes FINN's non-binarised operations "can also
    be extended to handle inputs and outputs in inner layers resulting in
    a partially-binarised network".  This stage runs a regular float
    affine layer over the binarized features — the common arrangement
    where only the classifier head keeps full precision.
    """

    weight: np.ndarray            # (ID, OD) float
    bias: np.ndarray | None

    def __post_init__(self):
        if self.weight.ndim != 2:
            raise ValueError("weight must be (in, out)")
        if self.bias is not None and self.bias.shape != (self.weight.shape[1],):
            raise ValueError("bias shape mismatch")

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])

    def __call__(self, x: np.ndarray | PackedRows) -> np.ndarray:
        if isinstance(x, PackedRows):
            x = x.to_pm1()  # network boundary: back to full precision
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class FoldedBNN:
    """Deployment-form binarized network (the FPGA's functional model).

    Parameters
    ----------
    stages:
        Engine list produced by :func:`fold_network` (or deserialized).
    num_classes:
        True class count (FINN pads the last layer).
    backend:
        Binary-kernel backend for every stage: a name from
        :func:`repro.bnn.kernels.available_backends`, ``"auto"`` for the
        per-shape autotuner, or ``None`` to defer to the
        ``REPRO_BNN_BACKEND`` environment override (default ``auto``).
        All backends are bit-exact, so this is purely a speed knob.
    packed:
        Keep activations bit-packed between stages (default).  ``False``
        forces the float ±1 representation everywhere — same results,
        used for equivalence testing.
    """

    def __init__(
        self,
        stages: list,
        num_classes: int = 10,
        backend: str | None = None,
        packed: bool = True,
    ):
        if not stages:
            raise ValueError("folded network needs at least one stage")
        self.stages = stages
        self.num_classes = num_classes
        self.backend = backend
        self.packed = packed
        self._plan: list[bool] | None = None
        self._span_names: list[str] | None = None
        self._compiled: dict[int, object] = {}
        self._compile_failed = False

    def with_backend(self, backend: str | None) -> "FoldedBNN":
        """Same stages (weight prep caches included), different backend."""
        clone = FoldedBNN(self.stages, self.num_classes, backend=backend, packed=self.packed)
        return clone

    # -- compiled plan -------------------------------------------------------
    def compile_inference(
        self,
        micro_batch: int = 64,
        backend: str | None = None,
        threads: int | None = None,
    ):
        """Preplan the packed dataflow end-to-end; see :mod:`repro.bnn.plan`.

        Returns a :class:`~repro.bnn.plan.CompiledBNNPlan` whose
        ``forward`` is bit-identical to ``self.forward(x, batch_size=
        micro_batch)`` while reusing preallocated per-layer buffers and a
        per-stage backend resolved once at compile time.  Raises
        :class:`~repro.bnn.plan.PlanUnsupported` when the network has no
        packed pipeline to compile (``packed=False``).
        """
        from .plan import CompiledBNNPlan

        return CompiledBNNPlan(
            self, micro_batch=micro_batch, backend=backend, threads=threads
        )

    def _auto_plan(self, batch_size: int):
        """Cached plan for ``forward`` (None = use the uncompiled path)."""
        if not self.packed or self._compile_failed or not _auto_compile_enabled():
            return None
        plan = self._compiled.get(batch_size)
        if plan is None:
            from .plan import PlanUnsupported

            try:
                plan = self.compile_inference(micro_batch=batch_size)
            except PlanUnsupported:
                self._compile_failed = True
                return None
            if len(self._compiled) >= 2:
                # Callers alternating batch sizes get at most two live
                # buffer sets; anything older is dropped.
                self._compiled.pop(next(iter(self._compiled)))
            self._compiled[batch_size] = plan
        return plan

    # -- packed-pipeline planning -------------------------------------------
    def _consumer_after(self, index: int):
        """Next non-pool stage (pools preserve representation)."""
        for stage in self.stages[index + 1 :]:
            if not isinstance(stage, FoldedPool):
                return stage
        return None

    def _emit_plan(self) -> list[bool]:
        """Which stages should emit packed bits instead of ±1 floats.

        A thresholding stage emits packed output when the next consuming
        stage can take bits: a pad-free binary-input conv, any dense
        engine, or the float head (which unpacks at the boundary).  The
        network output itself is always float.
        """
        if self._plan is None:
            plan = []
            for i, stage in enumerate(self.stages):
                emit = False
                if self.packed and (
                    isinstance(stage, FoldedConv)
                    or (isinstance(stage, FoldedDense) and stage.thresholds is not None)
                ):
                    consumer = self._consumer_after(i)
                    if isinstance(consumer, FoldedConv):
                        emit = consumer.binary_input and consumer.pad == 0
                    elif isinstance(consumer, (FoldedDense, FloatDenseHead)):
                        emit = True
                plan.append(emit)
            self._plan = plan
        return self._plan

    @property
    def stage_labels(self) -> list[str]:
        """CNV-style names per stage: ``conv1..convN``, ``pool1..``, ``fc1..``.

        Matches the paper's Table I engine naming for the standard CNV
        topology, so traced per-layer spans (``bnn.conv2`` ...) line up
        with the Eq. (3)-(5) cycle-model predictions layer for layer.
        """
        if self._span_names is None:
            counts = {"conv": 0, "fc": 0, "pool": 0, "head": 0}
            labels = []
            for stage in self.stages:
                if isinstance(stage, FoldedConv):
                    counts["conv"] += 1
                    labels.append(f"conv{counts['conv']}")
                elif isinstance(stage, FoldedDense):
                    counts["fc"] += 1
                    labels.append(f"fc{counts['fc']}")
                elif isinstance(stage, FoldedPool):
                    counts["pool"] += 1
                    labels.append(f"pool{counts['pool']}")
                else:
                    counts["head"] += 1
                    labels.append(f"head{counts['head']}")
            self._span_names = labels
        return self._span_names

    # -- inference -----------------------------------------------------------
    def forward(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Raw output scores (N, out_features of the last engine).

        Packed networks route through a cached
        :class:`~repro.bnn.plan.CompiledBNNPlan` (bit-identical,
        buffer-reusing; disable with ``REPRO_BNN_COMPILE=0``); the
        uncompiled datapath stays available as :meth:`forward_uncompiled`.

        With a :mod:`repro.obs` tracer installed, every stage emits a
        ``bnn.<label>`` span (see :attr:`stage_labels`); without one the
        per-stage overhead is a single global read.
        """
        compiled = self._auto_plan(batch_size)
        if compiled is not None:
            return compiled.forward(images)
        return self.forward_uncompiled(images, batch_size)

    def forward_uncompiled(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """The per-call (no preplanned buffers) datapath — the reference
        the compiled plan is verified against bit-for-bit."""
        plan = self._emit_plan()
        labels = self.stage_labels
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            x: np.ndarray | PackedMaps | PackedRows = images[start : start + batch_size]
            for i, (stage, emit) in enumerate(zip(self.stages, plan)):
                if isinstance(stage, (FoldedDense, FloatDenseHead)):
                    if isinstance(x, PackedMaps):
                        x = x.flatten_rows()
                    elif isinstance(x, np.ndarray) and x.ndim == 4:
                        x = x.reshape(x.shape[0], -1)
                with obs.trace_span("bnn." + labels[i], category="bnn"):
                    if isinstance(stage, (FoldedConv, FoldedDense)):
                        x = stage(x, emit_packed=emit, backend=self.backend)
                    else:
                        x = stage(x)
            outputs.append(x)
        return np.concatenate(outputs, axis=0)

    def class_scores(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Scores truncated to the real classes (FINN pads the last layer)."""
        return self.forward(images, batch_size)[:, : self.num_classes]

    def predict(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        return self.class_scores(images, batch_size).argmax(axis=1)


def _conv_weight_matrix(layer: BinaryConv2D) -> np.ndarray:
    w = layer.binary_weight  # (OD, ID, K, K)
    return w.reshape(w.shape[0], -1)


def fold_network(
    net: Sequential,
    num_classes: int = 10,
    backend: str | None = None,
    packed: bool = True,
) -> FoldedBNN:
    """Fold a trained binarized Sequential into deployment form.

    Recognized patterns (in order):

    * ``BinaryConv2D, BatchNorm, BinaryActivation`` -> :class:`FoldedConv`
    * ``BinaryDense, BatchNorm, BinaryActivation`` -> :class:`FoldedDense`
    * ``BinaryDense, BatchNorm`` (terminal) -> affine-output FoldedDense
    * ``Dense`` (regular, terminal) -> :class:`FloatDenseHead`
      (partially-binarised network, Section II)
    * ``MaxPool2D`` -> :class:`FoldedPool`
    * ``Flatten`` -> implicit (handled at runtime)

    ``backend`` and ``packed`` configure the runtime datapath (see
    :class:`FoldedBNN`); they do not affect the folded weights.
    """
    stages: list = []
    layers = list(net.layers)
    i = 0
    first_conv = True
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, BinaryConv2D):
            bn, act = _expect_bn_act(layers, i, layer)
            stages.append(
                FoldedConv(
                    weight_matrix=_conv_weight_matrix(layer),
                    kernel_size=layer.kernel_size,
                    stride=layer.stride,
                    pad=layer.pad,
                    in_channels=layer.in_channels,
                    thresholds=fold_batchnorm(bn),
                    binary_input=not first_conv,
                )
            )
            first_conv = False
            i += 3
        elif isinstance(layer, BinaryDense):
            if i + 2 < len(layers) and isinstance(layers[i + 2], BinaryActivation):
                bn, _ = _expect_bn_act(layers, i, layer)
                stages.append(
                    FoldedDense(layer.binary_weight.T.copy(), fold_batchnorm(bn))
                )
                i += 3
            elif i + 1 < len(layers) and isinstance(layers[i + 1], BatchNorm):
                bn = layers[i + 1]
                std = np.sqrt(bn.running_var.value + bn.eps)
                scale = bn.gamma.value / std
                offset = bn.beta.value - bn.gamma.value * bn.running_mean.value / std
                stages.append(
                    FoldedDense(
                        layer.binary_weight.T.copy(),
                        thresholds=None,
                        output_scale=scale,
                        output_offset=offset,
                    )
                )
                i += 2
            else:
                stages.append(FoldedDense(layer.binary_weight.T.copy(), thresholds=None))
                i += 1
        elif isinstance(layer, MaxPool2D):
            stages.append(FoldedPool(layer.window, layer.stride))
            i += 1
        elif isinstance(layer, Flatten):
            i += 1
        elif isinstance(layer, Dense) and i == len(layers) - 1:
            bias = layer.bias.value.copy() if layer.bias is not None else None
            stages.append(FloatDenseHead(layer.weight.value.copy(), bias))
            i += 1
        else:
            raise TypeError(
                f"fold_network cannot fold layer {type(layer).__name__}; "
                "binarized networks must be built from BinaryConv2D/BinaryDense/"
                "BatchNorm/BinaryActivation/MaxPool2D/Flatten, optionally with "
                "a terminal full-precision Dense head"
            )
    return FoldedBNN(stages, num_classes=num_classes, backend=backend, packed=packed)


def _expect_bn_act(layers, i, layer):
    if i + 2 >= len(layers) or not isinstance(layers[i + 1], BatchNorm) or not isinstance(
        layers[i + 2], BinaryActivation
    ):
        raise TypeError(
            f"{type(layer).__name__} at position {i} must be followed by "
            "BatchNorm and BinaryActivation"
        )
    return layers[i + 1], layers[i + 2]
