"""Folded BNN inference — the functional model of FINN's datapath.

:func:`fold_network` converts a *trained* binarized Sequential (built from
``BinaryConv2D``/``BinaryDense`` + ``BatchNorm`` + ``BinaryActivation`` +
``MaxPool2D``/``Flatten`` layers) into a :class:`FoldedBNN` that runs the
deployment arithmetic:

* first layer: real-valued inputs times {-1,+1} weights ("regular
  operations" in the paper), thresholded to {-1,+1};
* inner layers: bit-packed XNOR-popcount integer accumulation followed by
  integer threshold comparison;
* last layer: XNOR-popcount accumulation with *no* activation — the raw
  class scores, to which the trained BatchNorm affine is applied so scores
  keep the scale the DMU was trained on.

The folded network's class decisions are bit-exact equal to the eval-mode
training network (verified by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import functional as F
from ..nn.layers.batchnorm import BatchNorm
from ..nn.layers.dense import Dense
from ..nn.layers.flatten import Flatten
from ..nn.layers.pool import MaxPool2D
from ..nn.network import Sequential
from .layers import BinaryActivation, BinaryConv2D, BinaryDense
from .thresholding import ChannelThresholds, fold_batchnorm
from .xnor import pack_pm1, xnor_popcount_matmul

__all__ = [
    "FoldedConv",
    "FoldedDense",
    "FoldedPool",
    "FloatDenseHead",
    "FoldedBNN",
    "fold_network",
]


@dataclass
class FoldedConv:
    """A convolution engine: binary weights + thresholds."""

    weight_matrix: np.ndarray  # (OD, ID*K*K) in {-1,+1}
    kernel_size: int
    stride: int
    pad: int
    in_channels: int
    thresholds: ChannelThresholds
    binary_input: bool
    packed_weight: np.ndarray = field(init=False, repr=False)
    fan_in: int = field(init=False)

    def __post_init__(self):
        self.packed_weight, self.fan_in = pack_pm1(self.weight_matrix)

    @property
    def out_channels(self) -> int:
        return int(self.weight_matrix.shape[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        oh = F.conv_output_size(x.shape[2], k, self.stride, self.pad)
        ow = F.conv_output_size(x.shape[3], k, self.stride, self.pad)
        cols = F.im2col(x, k, k, self.stride, self.pad)
        if self.binary_input:
            packed, bits = pack_pm1(cols)
            acc = xnor_popcount_matmul(packed, self.packed_weight, bits).astype(np.float64)
        else:
            acc = cols @ self.weight_matrix.T
        acc = acc.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        return self.thresholds.apply(acc, channel_axis=1)


@dataclass
class FoldedDense:
    """A fully-connected engine: binary weights + thresholds or affine out."""

    weight_matrix: np.ndarray  # (OD, ID) in {-1,+1}
    thresholds: ChannelThresholds | None
    output_scale: np.ndarray | None = None   # affine applied when not thresholding
    output_offset: np.ndarray | None = None
    packed_weight: np.ndarray = field(init=False, repr=False)
    fan_in: int = field(init=False)

    def __post_init__(self):
        self.packed_weight, self.fan_in = pack_pm1(self.weight_matrix)

    @property
    def out_features(self) -> int:
        return int(self.weight_matrix.shape[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        packed, bits = pack_pm1(x)
        acc = xnor_popcount_matmul(packed, self.packed_weight, bits).astype(np.float64)
        if self.thresholds is not None:
            return self.thresholds.apply(acc, channel_axis=1)
        if self.output_scale is not None:
            acc = acc * self.output_scale + self.output_offset
        return acc


@dataclass
class FoldedPool:
    """Max pooling over {-1,+1} maps — a boolean OR in FINN hardware."""

    window: int
    stride: int

    def __call__(self, x: np.ndarray) -> np.ndarray:
        pool = MaxPool2D(self.window, self.stride)
        return pool.forward(x)


@dataclass
class FloatDenseHead:
    """Full-precision output layer of a *partially-binarised* network.

    The paper (Section II) notes FINN's non-binarised operations "can also
    be extended to handle inputs and outputs in inner layers resulting in
    a partially-binarised network".  This stage runs a regular float
    affine layer over the binarized features — the common arrangement
    where only the classifier head keeps full precision.
    """

    weight: np.ndarray            # (ID, OD) float
    bias: np.ndarray | None

    def __post_init__(self):
        if self.weight.ndim != 2:
            raise ValueError("weight must be (in, out)")
        if self.bias is not None and self.bias.shape != (self.weight.shape[1],):
            raise ValueError("bias shape mismatch")

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class FoldedBNN:
    """Deployment-form binarized network (the FPGA's functional model)."""

    def __init__(self, stages: list, num_classes: int = 10):
        if not stages:
            raise ValueError("folded network needs at least one stage")
        self.stages = stages
        self.num_classes = num_classes

    def forward(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Raw output scores (N, out_features of the last engine)."""
        outputs = []
        for start in range(0, images.shape[0], batch_size):
            x = images[start : start + batch_size]
            for stage in self.stages:
                if isinstance(stage, (FoldedDense, FloatDenseHead)) and x.ndim == 4:
                    x = x.reshape(x.shape[0], -1)
                x = stage(x)
            outputs.append(x)
        return np.concatenate(outputs, axis=0)

    def class_scores(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Scores truncated to the real classes (FINN pads the last layer)."""
        return self.forward(images, batch_size)[:, : self.num_classes]

    def predict(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        return self.class_scores(images, batch_size).argmax(axis=1)


def _conv_weight_matrix(layer: BinaryConv2D) -> np.ndarray:
    w = layer.binary_weight  # (OD, ID, K, K)
    return w.reshape(w.shape[0], -1)


def fold_network(net: Sequential, num_classes: int = 10) -> FoldedBNN:
    """Fold a trained binarized Sequential into deployment form.

    Recognized patterns (in order):

    * ``BinaryConv2D, BatchNorm, BinaryActivation`` -> :class:`FoldedConv`
    * ``BinaryDense, BatchNorm, BinaryActivation`` -> :class:`FoldedDense`
    * ``BinaryDense, BatchNorm`` (terminal) -> affine-output FoldedDense
    * ``Dense`` (regular, terminal) -> :class:`FloatDenseHead`
      (partially-binarised network, Section II)
    * ``MaxPool2D`` -> :class:`FoldedPool`
    * ``Flatten`` -> implicit (handled at runtime)
    """
    stages: list = []
    layers = list(net.layers)
    i = 0
    first_conv = True
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, BinaryConv2D):
            bn, act = _expect_bn_act(layers, i, layer)
            stages.append(
                FoldedConv(
                    weight_matrix=_conv_weight_matrix(layer),
                    kernel_size=layer.kernel_size,
                    stride=layer.stride,
                    pad=layer.pad,
                    in_channels=layer.in_channels,
                    thresholds=fold_batchnorm(bn),
                    binary_input=not first_conv,
                )
            )
            first_conv = False
            i += 3
        elif isinstance(layer, BinaryDense):
            if i + 2 < len(layers) and isinstance(layers[i + 2], BinaryActivation):
                bn, _ = _expect_bn_act(layers, i, layer)
                stages.append(
                    FoldedDense(layer.binary_weight.T.copy(), fold_batchnorm(bn))
                )
                i += 3
            elif i + 1 < len(layers) and isinstance(layers[i + 1], BatchNorm):
                bn = layers[i + 1]
                std = np.sqrt(bn.running_var.value + bn.eps)
                scale = bn.gamma.value / std
                offset = bn.beta.value - bn.gamma.value * bn.running_mean.value / std
                stages.append(
                    FoldedDense(
                        layer.binary_weight.T.copy(),
                        thresholds=None,
                        output_scale=scale,
                        output_offset=offset,
                    )
                )
                i += 2
            else:
                stages.append(FoldedDense(layer.binary_weight.T.copy(), thresholds=None))
                i += 1
        elif isinstance(layer, MaxPool2D):
            stages.append(FoldedPool(layer.window, layer.stride))
            i += 1
        elif isinstance(layer, Flatten):
            i += 1
        elif isinstance(layer, Dense) and i == len(layers) - 1:
            bias = layer.bias.value.copy() if layer.bias is not None else None
            stages.append(FloatDenseHead(layer.weight.value.copy(), bias))
            i += 1
        else:
            raise TypeError(
                f"fold_network cannot fold layer {type(layer).__name__}; "
                "binarized networks must be built from BinaryConv2D/BinaryDense/"
                "BatchNorm/BinaryActivation/MaxPool2D/Flatten, optionally with "
                "a terminal full-precision Dense head"
            )
    return FoldedBNN(stages, num_classes=num_classes)


def _expect_bn_act(layers, i, layer):
    if i + 2 >= len(layers) or not isinstance(layers[i + 1], BatchNorm) or not isinstance(
        layers[i + 2], BinaryActivation
    ):
        raise TypeError(
            f"{type(layer).__name__} at position {i} must be followed by "
            "BatchNorm and BinaryActivation"
        )
    return layers[i + 1], layers[i + 2]
