"""Pluggable binary-kernel backends for folded BNN inference.

Four bit-exact implementations of the packed {-1, +1} matrix product:

* ``reference`` — the original chunked uint8 XOR + popcount datapath;
* ``bitplane``  — bit-planes through BLAS GEMM: the 0/1 activation
  plane against a ±1 float32 weight plane
  (``dot = 2*(a01 @ (2*w01 - 1).T) + n - 2*rowsum(w)``);
* ``threaded``  — the same bitplane algebra, cache-blocked and fanned
  across per-thread output slabs (``threaded@<k>`` variants pin the
  thread count; ``REPRO_BNN_THREADS`` sets the process default);
* ``lut64``     — uint64-word XOR with a 16-bit lookup-table popcount
  (registered but retired from autotune: opt-in via
  ``REPRO_BNN_BACKEND=lut64``).

Backend choice is threaded through :class:`repro.bnn.FoldedBNN`; the
default is ``"auto"``, which microbenchmarks the candidates on each
layer's actual matmul shape (:func:`select_backend`) under a null
tracer with fault injection suspended, and persists its decisions to a
versioned on-disk cache (``REPRO_KERNEL_CACHE``) so warm processes skip
re-benchmarking.  The ``REPRO_BNN_BACKEND`` environment variable
overrides the default for a whole process.
"""

from .base import (
    ENV_BACKEND,
    BinaryKernel,
    autotune_candidates,
    available_backends,
    default_backend,
    get_kernel,
    register_kernel,
)
from .bitplane import BitplaneGemmKernel
from .lut64 import Lut64Kernel
from .reference import ReferenceXnorKernel
from .select import (
    ENV_CACHE,
    clear_selection_cache,
    select_backend,
    selection_cache,
    selection_cache_path,
)
from .threaded import ENV_THREADS, ThreadedBitplaneKernel, resolve_bnn_threads

__all__ = [
    "BinaryKernel",
    "ReferenceXnorKernel",
    "BitplaneGemmKernel",
    "ThreadedBitplaneKernel",
    "Lut64Kernel",
    "register_kernel",
    "get_kernel",
    "available_backends",
    "autotune_candidates",
    "default_backend",
    "resolve_bnn_threads",
    "select_backend",
    "selection_cache",
    "selection_cache_path",
    "clear_selection_cache",
    "ENV_BACKEND",
    "ENV_THREADS",
    "ENV_CACHE",
]
