"""Pluggable binary-kernel backends for folded BNN inference.

Three bit-exact implementations of the packed {-1, +1} matrix product:

* ``reference`` — the original chunked uint8 XOR + popcount datapath;
* ``bitplane``  — bit-planes through BLAS GEMM: the 0/1 activation
  plane against a ±1 float32 weight plane
  (``dot = 2*(a01 @ (2*w01 - 1).T) + n - 2*rowsum(w)``);
* ``lut64``     — uint64-word XOR with a 16-bit lookup-table popcount
  (no ``np.bitwise_count``, so it also serves NumPy < 2.0).

Backend choice is threaded through :class:`repro.bnn.FoldedBNN`; the
default is ``"auto"``, which microbenchmarks the candidates on each
layer's actual matmul shape (:func:`select_backend`).  The
``REPRO_BNN_BACKEND`` environment variable overrides the default for a
whole process.
"""

from .base import (
    ENV_BACKEND,
    BinaryKernel,
    available_backends,
    default_backend,
    get_kernel,
    register_kernel,
)
from .bitplane import BitplaneGemmKernel
from .lut64 import Lut64Kernel
from .reference import ReferenceXnorKernel
from .select import clear_selection_cache, select_backend, selection_cache

__all__ = [
    "BinaryKernel",
    "ReferenceXnorKernel",
    "BitplaneGemmKernel",
    "Lut64Kernel",
    "register_kernel",
    "get_kernel",
    "available_backends",
    "default_backend",
    "select_backend",
    "selection_cache",
    "clear_selection_cache",
    "ENV_BACKEND",
]
