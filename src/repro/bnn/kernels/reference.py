"""Reference backend: chunked uint8 XOR + popcount (the seed implementation).

This is the straight software transliteration of the FINN PE datapath
the paper builds on (Sec. II-B): XNOR the packed ±1 operands, popcount,
then ``dot = n - 2 * popcount(xor(a, w))``.  Every other backend in
:mod:`repro.bnn.kernels` must match it bit-for-bit; it is also the
baseline all ``repro bench-kernels`` speedups are quoted against.
"""

from __future__ import annotations

import numpy as np

from ..xnor import xnor_popcount_matmul
from .base import BinaryKernel, register_kernel

__all__ = ["ReferenceXnorKernel"]


class ReferenceXnorKernel(BinaryKernel):
    """Direct FINN arithmetic: ``dot = n - 2 * popcount(xor(a, w))``.

    Materializes a (chunk, N, B) uint8 XOR broadcast per row chunk —
    O(M·N·B) memory traffic with no BLAS — which makes it the ground
    truth the faster backends are verified against, and the baseline the
    benchmark harness reports speedups over.
    """

    name = "reference"

    def matmul(
        self, a_words: np.ndarray, w_prep: np.ndarray, n: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        result = xnor_popcount_matmul(a_words, w_prep, n)
        if out is None:
            return result
        out[...] = result
        return out


register_kernel(ReferenceXnorKernel())
