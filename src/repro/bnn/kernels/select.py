"""Per-shape backend autotuning with a persisted selection cache.

Which kernel wins depends on the matmul shape: tall-skinny conv unrollings
amortize the bit-plane GEMM's unpack cost, tiny FC layers may not, and the
relative cost of popcount vs BLAS varies across machines and NumPy builds.
``select_backend`` settles it empirically: microbenchmark every candidate
on synthetic operands of the actual layer shape and cache the winner, so
each folded network pays the (few-ms) tuning cost once per distinct shape
per process — and, with the on-disk cache, once per distinct shape per
*machine*: decisions are persisted to a versioned JSON file keyed by
(machine, python, numpy) so warm processes skip re-benchmarking entirely.

Candidates cover more than backend identity: the ``threaded`` backend is
raced at several explicit thread counts (``threaded@1``, ``threaded@2``,
...), so "how many threads does this shape deserve" is an empirical
per-shape decision — small shapes keep winning with 1 (i.e. stay serial)
while large-M conv unrollings can justify the fan-out on multi-core
machines.

Timing isolation: the microbenchmark loops run under a *null tracer*
and with fault injection *suspended* (:func:`repro.faults.suspend_faults`).
A traced, chaos-wrapped server would otherwise leak span bookkeeping and
injected latency into the timings and tune toward the wrong backend; the
``kernel.autotune`` span itself is still recorded on the tracer that was
active at entry.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

from ...obs.tracer import active as _active_tracer
from .base import autotune_candidates, get_kernel

__all__ = [
    "select_backend",
    "clear_selection_cache",
    "selection_cache",
    "selection_cache_path",
    "ENV_CACHE",
]

#: Environment variable overriding the on-disk cache location.  Set to a
#: path to relocate it, or to "" / "0" / "off" / "none" to disable
#: persistence for the process (in-memory caching still applies).
ENV_CACHE = "REPRO_KERNEL_CACHE"

#: Schema version of the persisted file; any mismatch is a cache miss.
_DISK_VERSION = 1

#: (m_bucket, n_out, n_bits, candidates) -> winning backend name.
_CACHE: dict[tuple, str] = {}

#: Guards _CACHE <-> disk synchronization (selection can race across
#: server stage threads compiling plans concurrently).
_LOCK = threading.RLock()

#: Environment keys already merged from disk into _CACHE this process.
_DISK_LOADED: set[str] = set()

#: Row count used for timing; larger M only amplifies the same per-row work.
_BENCH_ROWS = 128
#: Timing repetitions (after one warmup); best-of is robust to scheduler noise.
_BENCH_REPS = 2


def _bucket_rows(m: int) -> int:
    """Round M up to a power of two so batch-size jitter reuses the cache."""
    m = max(1, int(m))
    return 1 << (m - 1).bit_length()


def _environment_key() -> str:
    """Disk-cache namespace: decisions only transfer within one setup."""
    return "|".join(
        (
            platform.machine() or "unknown",
            f"py{platform.python_version()}",
            f"numpy{np.__version__}",
            f"cpus{os.cpu_count() or 1}",
        )
    )


def selection_cache_path() -> Path | None:
    """Resolved on-disk cache file, or ``None`` when persistence is off."""
    raw = os.environ.get(ENV_CACHE)
    if raw is not None:
        raw = raw.strip()
        if raw.lower() in ("", "0", "off", "none"):
            return None
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro" / "kernel_select.json"


def _shape_key_str(key: tuple) -> str:
    m_bucket, n_out, n_bits, names = key
    return f"{m_bucket}x{n_out}x{n_bits}|{'+'.join(names)}"


def _load_disk(env_key: str) -> None:
    """Merge persisted decisions for *env_key* into the in-memory cache.

    Any unreadable, unparseable, schema-mismatched, or structurally wrong
    file is treated as a cache miss (same contract as the workbench
    cache): autotuning simply runs again and rewrites the file.
    """
    if env_key in _DISK_LOADED:
        return
    _DISK_LOADED.add(env_key)
    path = selection_cache_path()
    if path is None:
        return
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict) or data.get("version") != _DISK_VERSION:
            return
        machines = data.get("machines")
        if not isinstance(machines, dict):
            return
        entries = machines.get(env_key, {})
        if not isinstance(entries, dict):
            return
        for shape_str, winner in entries.items():
            if not isinstance(winner, str):
                continue
            try:
                dims, names_str = shape_str.split("|", 1)
                m_bucket, n_out, n_bits = (int(v) for v in dims.split("x"))
                names = tuple(names_str.split("+"))
                get_kernel(winner)  # stale entries for unregistered backends
            except (ValueError, KeyError):
                continue
            _CACHE.setdefault((m_bucket, n_out, n_bits, names), winner)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return


def _save_disk(env_key: str) -> None:
    """Rewrite the persisted file with this environment's decisions."""
    path = selection_cache_path()
    if path is None:
        return
    data: dict = {"version": _DISK_VERSION, "machines": {}}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and existing.get("version") == _DISK_VERSION:
            machines = existing.get("machines")
            if isinstance(machines, dict):
                data["machines"] = machines
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        pass  # corrupt or absent: start a fresh file
    data["machines"][env_key] = {
        _shape_key_str(key): winner for key, winner in _CACHE.items()
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass


def selection_cache() -> dict[tuple, str]:
    """Read-only view of the tuning decisions made so far (for reporting)."""
    with _LOCK:
        return dict(_CACHE)


def clear_selection_cache() -> None:
    """Forget all decisions — in memory *and* on disk."""
    with _LOCK:
        _CACHE.clear()
        _DISK_LOADED.clear()
        path = selection_cache_path()
        if path is not None:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass


def _thread_variants(cpus: int | None = None) -> tuple[str, ...]:
    """``threaded@k`` candidates: powers of two up to min(cpu_count, 8).

    Always includes ``threaded@1`` so the cache-blocked serial path is
    raced against plain ``bitplane`` even on single-core machines, plus
    ``threaded@2`` as the cheapest probe of whether fan-out pays at all.
    """
    cpus = max(1, int(cpus if cpus is not None else (os.cpu_count() or 1)))
    counts = {1, 2}
    k = 4
    while k <= min(cpus, 8):
        counts.add(k)
        k *= 2
    return tuple(f"threaded@{k}" for k in sorted(counts))


def _expand_candidates(names: tuple[str, ...]) -> tuple[str, ...]:
    """Replace bare ``threaded`` with explicit thread-count variants."""
    expanded: list[str] = []
    for name in names:
        if name == "threaded":
            expanded.extend(_thread_variants())
        else:
            expanded.append(name)
    # Dedupe, preserving order (a caller may list overlapping variants).
    return tuple(dict.fromkeys(expanded))


def _time_kernel(kernel, a_words: np.ndarray, w_words: np.ndarray, n: int) -> float:
    prep = kernel.prepare(w_words, n)
    kernel.matmul(a_words, prep, n)  # warmup (allocations, lazy tables)
    best = float("inf")
    for _ in range(_BENCH_REPS):
        start = time.perf_counter()
        kernel.matmul(a_words, prep, n)
        best = min(best, time.perf_counter() - start)
    return best


def _isolated_timings(
    names: tuple[str, ...], a_words: np.ndarray, w_words: np.ndarray, n_bits: int
) -> dict[str, float]:
    """Time every candidate under a null tracer with faults suspended."""
    from ...faults import suspend_faults  # local: keep kernels importable alone

    previous = _active_tracer()
    try:
        # Detach whatever tracer is active so span/gauge bookkeeping
        # inside kernels does not pollute the timing comparison...
        from ...obs.tracer import uninstall as _uninstall, install as _install

        _uninstall()
        with suspend_faults():
            return {
                name: _time_kernel(get_kernel(name), a_words, w_words, n_bits)
                for name in names
            }
    finally:
        # ...then restore it for the caller's kernel.autotune span.
        if previous is not None:
            _install(previous)


def select_backend(
    m: int,
    n_out: int,
    n_bits: int,
    candidates: tuple[str, ...] | None = None,
) -> str:
    """Fastest backend for an (M, n_bits) x (n_bits, N) binary matmul.

    All backends are bit-exact, so the choice is purely a performance
    decision; results are cached per (bucketed M, N, n_bits, candidates)
    in memory and persisted to :func:`selection_cache_path`.  The
    returned name may be a variant (e.g. ``"threaded@2"``) — feed it to
    :func:`get_kernel` as-is.
    """
    names = tuple(candidates) if candidates is not None else autotune_candidates()
    names = _expand_candidates(names)
    if len(names) == 1:
        return names[0]
    m_bucket = _bucket_rows(m)
    key = (m_bucket, int(n_out), int(n_bits), names)
    env_key = _environment_key()
    with _LOCK:
        _load_disk(env_key)
        cached = _CACHE.get(key)
    if cached is not None:
        return cached

    rows = min(m_bucket, _BENCH_ROWS)
    words = -(-int(n_bits) // 8)
    rng = np.random.default_rng(n_bits * 7919 + n_out)
    a_words = rng.integers(0, 256, size=(rows, words), dtype=np.uint8)
    w_words = rng.integers(0, 256, size=(int(n_out), words), dtype=np.uint8)
    # Zero the pad bits so operands honor the packed-layout contract.
    tail = int(n_bits) % 8
    if tail:
        mask = np.uint8(0xFF << (8 - tail) & 0xFF)
        a_words[:, -1] &= mask
        w_words[:, -1] &= mask

    tracer = _active_tracer()
    tune_start = tracer.now() if tracer is not None else None
    timings = _isolated_timings(names, a_words, w_words, int(n_bits))
    winner = min(timings, key=timings.get)
    with _LOCK:
        # A racing thread may have tuned the same key; first write wins
        # so both threads return the same (persisted) decision.
        winner = _CACHE.setdefault(key, winner)
        _save_disk(env_key)
    if tracer is not None:
        # One span per cache miss: the autotune cost and its decision.
        tracer.add_span(
            "kernel.autotune", tune_start, tracer.now(), category="kernel",
            m_bucket=m_bucket, n_out=int(n_out), n_bits=int(n_bits), winner=winner,
            timings_ms={name: t * 1e3 for name, t in timings.items()},
        )
    return winner
