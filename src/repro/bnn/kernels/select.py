"""Per-shape backend autotuning.

Which kernel wins depends on the matmul shape: tall-skinny conv unrollings
amortize the bit-plane GEMM's unpack cost, tiny FC layers may not, and the
relative cost of popcount vs BLAS varies across machines and NumPy builds.
``select_backend`` settles it empirically: microbenchmark every candidate
on synthetic operands of the actual layer shape and cache the winner, so
each folded network pays the (few-ms) tuning cost once per distinct shape
per process.
"""

from __future__ import annotations

import time

import numpy as np

from ...obs.tracer import active as _active_tracer
from .base import available_backends, get_kernel

__all__ = ["select_backend", "clear_selection_cache", "selection_cache"]

#: (m_bucket, n_out, n_bits, candidates) -> winning backend name.
_CACHE: dict[tuple, str] = {}

#: Row count used for timing; larger M only amplifies the same per-row work.
_BENCH_ROWS = 128
#: Timing repetitions (after one warmup); best-of is robust to scheduler noise.
_BENCH_REPS = 2


def _bucket_rows(m: int) -> int:
    """Round M up to a power of two so batch-size jitter reuses the cache."""
    m = max(1, int(m))
    return 1 << (m - 1).bit_length()


def selection_cache() -> dict[tuple, str]:
    """Read-only view of the tuning decisions made so far (for reporting)."""
    return dict(_CACHE)


def clear_selection_cache() -> None:
    _CACHE.clear()


def _time_kernel(kernel, a_words: np.ndarray, w_words: np.ndarray, n: int) -> float:
    prep = kernel.prepare(w_words, n)
    kernel.matmul(a_words, prep, n)  # warmup (allocations, lazy tables)
    best = float("inf")
    for _ in range(_BENCH_REPS):
        start = time.perf_counter()
        kernel.matmul(a_words, prep, n)
        best = min(best, time.perf_counter() - start)
    return best


def select_backend(
    m: int,
    n_out: int,
    n_bits: int,
    candidates: tuple[str, ...] | None = None,
) -> str:
    """Fastest backend for an (M, n_bits) x (n_bits, N) binary matmul.

    All backends are bit-exact, so the choice is purely a performance
    decision; results are cached per (bucketed M, N, n_bits, candidates).
    """
    names = tuple(candidates) if candidates is not None else available_backends()
    if len(names) == 1:
        return names[0]
    m_bucket = _bucket_rows(m)
    key = (m_bucket, int(n_out), int(n_bits), names)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    rows = min(m_bucket, _BENCH_ROWS)
    words = -(-int(n_bits) // 8)
    rng = np.random.default_rng(n_bits * 7919 + n_out)
    a_words = rng.integers(0, 256, size=(rows, words), dtype=np.uint8)
    w_words = rng.integers(0, 256, size=(int(n_out), words), dtype=np.uint8)
    # Zero the pad bits so operands honor the packed-layout contract.
    tail = int(n_bits) % 8
    if tail:
        mask = np.uint8(0xFF << (8 - tail) & 0xFF)
        a_words[:, -1] &= mask
        w_words[:, -1] &= mask

    tracer = _active_tracer()
    tune_start = tracer.now() if tracer is not None else None
    timings = {name: _time_kernel(get_kernel(name), a_words, w_words, int(n_bits)) for name in names}
    winner = min(timings, key=timings.get)
    _CACHE[key] = winner
    if tracer is not None:
        # One span per cache miss: the autotune cost and its decision.
        tracer.add_span(
            "kernel.autotune", tune_start, tracer.now(), category="kernel",
            m_bucket=m_bucket, n_out=int(n_out), n_bits=int(n_bits), winner=winner,
            timings_ms={name: t * 1e3 for name, t in timings.items()},
        )
    return winner
