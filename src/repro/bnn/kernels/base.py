"""Binary-kernel backend interface and registry.

A :class:`BinaryKernel` evaluates the {-1, +1} matrix product over
bit-packed operands:

* activations ``a_words``: (M, B) uint8, one row per receptive field;
* weights prepared once per layer via :meth:`BinaryKernel.prepare` from
  the same packed representation;
* ``n``: the number of *valid* bit positions per row.

This is the software stand-in for the paper's FPGA compute fabric: one
``matmul`` call corresponds to what a FINN PE×SIMD engine array does in
``CC`` cycles under Eqs. (3)-(4) (see :mod:`repro.finn`), which is why
the kernel benchmark compares per-layer measured time against that
cycle model (:func:`repro.obs.eq345_layer_residuals`).

The packed layout contract is shared by every backend: bit 1 encodes +1,
bit 0 encodes -1, and any pad position (trailing byte fill or embedded
channel-group padding) is 0 in **both** operands.  Under that contract a
pad position contributes nothing to XOR-popcounts, 0/1 products, or row
popcounts, so every backend computes the exact integer dot product
``sum(a_i * w_i)`` over the ``n`` valid positions — backends are
interchangeable bit-for-bit, and the autotuner may pick freely on speed.
"""

from __future__ import annotations

import abc
import os

import numpy as np

__all__ = [
    "BinaryKernel",
    "register_kernel",
    "get_kernel",
    "available_backends",
    "default_backend",
    "ENV_BACKEND",
]

#: Environment variable overriding the backend for every folded network:
#: one of the registered names, or "auto" for the per-shape autotuner.
ENV_BACKEND = "REPRO_BNN_BACKEND"


class BinaryKernel(abc.ABC):
    """One implementation of the packed {-1, +1} matrix product."""

    #: Registry name; subclasses set it.
    name: str = ""

    def prepare(self, w_words: np.ndarray, n: int):
        """Fold-time weight preparation; result is passed to :meth:`matmul`.

        The default keeps the packed words as-is.  Backends may unpack,
        widen, or precompute row statistics here — it runs once per
        (layer, backend) while ``matmul`` runs per batch.
        """
        return w_words

    @abc.abstractmethod
    def matmul(self, a_words: np.ndarray, w_prep, n: int) -> np.ndarray:
        """(M, N) int64 matrix of ±1 dot products over ``n`` valid bits."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, BinaryKernel] = {}


def register_kernel(kernel: BinaryKernel) -> BinaryKernel:
    """Add a kernel instance to the registry (last registration wins)."""
    if not kernel.name:
        raise ValueError("kernel must define a non-empty name")
    _REGISTRY[kernel.name] = kernel
    return kernel


def available_backends() -> tuple[str, ...]:
    """Registered backend names, reference first."""
    names = sorted(_REGISTRY)
    if "reference" in names:
        names.remove("reference")
        names.insert(0, "reference")
    return tuple(names)


def get_kernel(name: str) -> BinaryKernel:
    """Look up a backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown binary-kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def default_backend() -> str:
    """Session default: the ``REPRO_BNN_BACKEND`` override, else "auto".

    Read per call (not cached) so tests and long-lived servers can switch
    via the environment.
    """
    name = os.environ.get(ENV_BACKEND, "").strip()
    if not name:
        return "auto"
    if name != "auto" and name not in _REGISTRY:
        raise KeyError(
            f"{ENV_BACKEND}={name!r} does not name a backend; "
            f"available: auto, {', '.join(available_backends())}"
        )
    return name
