"""Binary-kernel backend interface and registry.

A :class:`BinaryKernel` evaluates the {-1, +1} matrix product over
bit-packed operands:

* activations ``a_words``: (M, B) uint8, one row per receptive field;
* weights prepared once per layer via :meth:`BinaryKernel.prepare` from
  the same packed representation;
* ``n``: the number of *valid* bit positions per row.

This is the software stand-in for the paper's FPGA compute fabric: one
``matmul`` call corresponds to what a FINN PE×SIMD engine array does in
``CC`` cycles under Eqs. (3)-(4) (see :mod:`repro.finn`), which is why
the kernel benchmark compares per-layer measured time against that
cycle model (:func:`repro.obs.eq345_layer_residuals`).

The packed layout contract is shared by every backend: bit 1 encodes +1,
bit 0 encodes -1, and any pad position (trailing byte fill or embedded
channel-group padding) is 0 in **both** operands.  Under that contract a
pad position contributes nothing to XOR-popcounts, 0/1 products, or row
popcounts, so every backend computes the exact integer dot product
``sum(a_i * w_i)`` over the ``n`` valid positions — backends are
interchangeable bit-for-bit, and the autotuner may pick freely on speed.

Backend *variants* extend the registry with configured instances of a
registered backend: ``get_kernel("threaded@2")`` asks the ``threaded``
kernel for a 2-thread variant via :meth:`BinaryKernel.variant`.  The
autotuner uses variant names to race thread counts and tile sizes
against each other without registering one global instance per config.
"""

from __future__ import annotations

import abc
import os

import numpy as np

__all__ = [
    "BinaryKernel",
    "register_kernel",
    "get_kernel",
    "available_backends",
    "autotune_candidates",
    "default_backend",
    "ENV_BACKEND",
]

#: Environment variable overriding the backend for every folded network:
#: one of the registered names (optionally with an ``@variant`` suffix),
#: or "auto" for the per-shape autotuner.
ENV_BACKEND = "REPRO_BNN_BACKEND"


class BinaryKernel(abc.ABC):
    """One implementation of the packed {-1, +1} matrix product."""

    #: Registry name; subclasses set it.
    name: str = ""

    #: Whether the autotuner should race this backend by default.  Set
    #: False on backends that lose everywhere (they stay registered and
    #: selectable via ``REPRO_BNN_BACKEND`` / explicit ``backend=``, but
    #: stop burning autotune time).
    autotune: bool = True

    def prepare(self, w_words: np.ndarray, n: int):
        """Fold-time weight preparation; result is passed to :meth:`matmul`.

        The default keeps the packed words as-is.  Backends may unpack,
        widen, or precompute row statistics here — it runs once per
        (layer, backend) while ``matmul`` runs per batch.
        """
        return w_words

    @abc.abstractmethod
    def matmul(
        self, a_words: np.ndarray, w_prep, n: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """(M, N) int64 matrix of ±1 dot products over ``n`` valid bits.

        ``out``, when given, is a preallocated C-contiguous (M, N) int64
        array the kernel writes into and returns — the compiled plan's
        zero-allocation hot path.  Every backend must produce identical
        bits with or without it.
        """

    def variant(self, spec: str) -> "BinaryKernel":
        """Return a configured instance for ``"<name>@<spec>"`` lookups.

        The base implementation rejects the request; backends with
        tunable knobs (thread count, tile size) override it.  Variants
        share all bit-exactness guarantees with their base backend.
        """
        raise KeyError(f"backend {self.name!r} has no variants (got spec {spec!r})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: dict[str, BinaryKernel] = {}


def register_kernel(kernel: BinaryKernel) -> BinaryKernel:
    """Add a kernel instance to the registry (last registration wins)."""
    if not kernel.name:
        raise ValueError("kernel must define a non-empty name")
    _REGISTRY[kernel.name] = kernel
    return kernel


def available_backends() -> tuple[str, ...]:
    """Registered backend names, reference first."""
    names = sorted(_REGISTRY)
    if "reference" in names:
        names.remove("reference")
        names.insert(0, "reference")
    return tuple(names)


def autotune_candidates() -> tuple[str, ...]:
    """Backends the autotuner races by default (``autotune=True`` only)."""
    return tuple(n for n in available_backends() if _REGISTRY[n].autotune)


def get_kernel(name: str) -> BinaryKernel:
    """Look up a backend by registry name, or a ``base@spec`` variant."""
    kernel = _REGISTRY.get(name)
    if kernel is not None:
        return kernel
    base, sep, spec = name.partition("@")
    if sep and base in _REGISTRY:
        return _REGISTRY[base].variant(spec)
    raise KeyError(
        f"unknown binary-kernel backend {name!r}; "
        f"available: {', '.join(available_backends())}"
    ) from None


def default_backend() -> str:
    """Session default: the ``REPRO_BNN_BACKEND`` override, else "auto".

    Read per call (not cached) so tests and long-lived servers can switch
    via the environment.
    """
    name = os.environ.get(ENV_BACKEND, "").strip()
    if not name:
        return "auto"
    if name != "auto":
        try:
            get_kernel(name)  # validates plain names and @variants alike
        except KeyError:
            raise KeyError(
                f"{ENV_BACKEND}={name!r} does not name a backend; "
                f"available: auto, {', '.join(available_backends())}"
            ) from None
    return name
