"""Bit-plane GEMM backend: the binary dot product through BLAS.

With bit encodings ``a, w`` in {0, 1} of ±1 vectors ``x = 2a - 1`` and
``y = 2w - 1``,

    x . y = 4*(a . w) - 2*sum(a) - 2*sum(w) + n

Substituting ``p' = a . (2w - 1) = 2*(a . w) - sum(a)`` folds the
activation row-sum into the product itself:

    x . y = 2*p' + n - 2*sum(w)

so the whole ±1 matmul is one dense GEMM of the 0/1 activation plane
against a ±1 weight plane plus a per-output-channel constant — routed
through BLAS (cache-blocked, SIMD, multi-threaded) instead of the
reference path's elementwise XOR broadcast, with no per-call popcount.

Exactness: every product is in {-1, 0, +1} and every partial sum is an
integer bounded by ``n``; float32 represents integers exactly up to
2**24, so the result is bit-exact for ``n < 2**24`` (float64 planes are
used beyond that).  Pad bits are 0 in the activation plane, so whatever
the weight plane holds at pad positions contributes nothing, and the
weight row-sum counts set bits (valid positions) only.

Paper anchor: computes the same binary-layer product FINN's PE array
evaluates (Sec. II-B, the workload Eqs. (3)-(4) count cycles for) —
the algebra above is just the fastest numpy route to that result.
"""

from __future__ import annotations

import numpy as np

from ..bitops import popcount_rows
from .base import BinaryKernel, register_kernel

__all__ = ["BitplaneGemmKernel"]

#: Above this fan-in float32 accumulation could round; switch planes to f64.
_F32_EXACT_LIMIT = 1 << 24


class BitplaneGemmKernel(BinaryKernel):
    """``dot = 2*(a01 @ (2*w01 - 1).T) + n - 2*rowsum(w)`` via GEMM."""

    name = "bitplane"

    def __init__(self, plane_elements: int = 32 * 1024 * 1024):
        # Bounds the unpacked activation plane (elements, so ~128 MB of
        # float32).  Chunking by a fixed *row* count would split small-K
        # shapes into many undersized GEMMs; bounding by elements keeps
        # each chunk as large as memory allows, which BLAS rewards.
        self.plane_elements = int(plane_elements)

    def prepare(self, w_words: np.ndarray, n: int):
        dtype = np.float32 if n < _F32_EXACT_LIMIT else np.float64
        plane = np.unpackbits(w_words, axis=1).astype(dtype) * 2.0 - 1.0
        # Transposed once here so every matmul hits a plain (M,K)x(K,N) GEMM.
        correction = n - 2 * popcount_rows(w_words)
        return np.ascontiguousarray(plane.T), correction

    def matmul(
        self, a_words: np.ndarray, w_prep, n: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        w_plane_t, correction = w_prep
        m = a_words.shape[0]
        row_chunk = max(1, self.plane_elements // max(1, a_words.shape[1] * 8))
        if out is None:
            out = np.empty((m, w_plane_t.shape[1]), dtype=np.int64)
        for start in range(0, m, row_chunk):
            block = a_words[start : start + row_chunk]
            a_plane = np.unpackbits(block, axis=1).astype(w_plane_t.dtype)
            prod = (a_plane @ w_plane_t).astype(np.int64)
            prod *= 2
            prod += correction[None, :]
            out[start : start + row_chunk] = prod
        return out


register_kernel(BitplaneGemmKernel())
