"""Multi-threaded cache-blocked bitplane GEMM backend.

Same algebra as :class:`~repro.bnn.kernels.bitplane.BitplaneGemmKernel`
(``dot = 2*(a01 @ (2*w01 - 1).T) + n - 2*rowsum(w)``) with three
scheduling upgrades aimed at the compiled FoldedBNN plan:

* **Per-thread output slabs.**  The M dimension is split into one
  contiguous row slab per thread; each thread unpacks, multiplies and
  writes only its own ``out[start:stop]`` slice, so threads never share
  a cache line of the output and no reduction/merge step exists.  BLAS
  releases the GIL inside the slab GEMMs, which is where the time goes.
* **Cache blocking.**  Inside a slab, rows are processed in tiles whose
  unpacked activation plane fits the configured element budget, and wide
  outputs are column-tiled so (tile × n_tile) products stay cache-sized.
* **Serial below a threshold.**  Threading only pays above a minimum
  per-thread row count; small shapes (FC layers, tail chunks) stay on
  the single-thread path automatically.  The autotuner races explicit
  ``threaded@<k>`` variants so the *decision* of how many threads a
  given shape deserves is empirical, not guessed.

Exactness: identical to the bitplane backend — every product is in
{-1, 0, +1} and every partial sum is an integer bounded by ``n``
(float32-exact for ``n < 2**24``, float64 planes beyond), so the result
is bit-identical to ``reference`` for *any* tiling, column split, or
thread count.  That invariance is what lets the autotuner and the
``REPRO_BNN_THREADS`` knob vary freely without perturbing decisions
downstream (DMU choices, cascade routing, test goldens).

The activation unpack runs through one fused gather —
``np.take(table, words, axis=0, out=plane)`` against a (256, 8)
byte→bit-plane table — instead of ``unpackbits`` + ``astype``: one pass,
zero allocations, straight into the per-thread scratch buffer.

Paper anchor: the M-dimension slabbing is the software analogue of
replicating FINN PE arrays — throughput scales with compute units while
Eqs. (3)-(5) arithmetic is untouched.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..bitops import popcount_rows
from ...obs import tracer as _tracer
from .base import BinaryKernel, register_kernel

__all__ = ["ThreadedBitplaneKernel", "resolve_bnn_threads", "ENV_THREADS"]

#: Environment variable setting the default thread count for the
#: ``threaded`` backend ("" = auto: min(cpu_count, 8)).
ENV_THREADS = "REPRO_BNN_THREADS"

#: Above this fan-in float32 accumulation could round; switch planes to f64.
_F32_EXACT_LIMIT = 1 << 24

#: (256, 8) byte -> bit-plane tables, MSB first to match np.unpackbits.
_BYTE_PLANES_U8 = (
    (np.arange(256, dtype=np.uint16)[:, None] >> np.arange(7, -1, -1)[None, :]) & 1
).astype(np.uint8)
_BYTE_PLANES = {
    np.dtype(np.float32): _BYTE_PLANES_U8.astype(np.float32),
    np.dtype(np.float64): _BYTE_PLANES_U8.astype(np.float64),
}


def resolve_bnn_threads(threads: int | None = None) -> int:
    """Thread-count policy: explicit arg > ``REPRO_BNN_THREADS`` > auto.

    Auto is ``min(cpu_count, 8)`` — beyond that the unpack+GEMM per slab
    is memory-bound and extra threads only fight over bandwidth.
    """
    if threads is not None:
        return max(1, int(threads))
    env = os.environ.get(ENV_THREADS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"{ENV_THREADS}={env!r} is not an integer") from None
    return max(1, min(os.cpu_count() or 1, 8))


class ThreadedBitplaneKernel(BinaryKernel):
    """Cache-blocked bitplane GEMM with per-thread output slabs."""

    name = "threaded"

    def __init__(
        self,
        threads: int | None = None,
        row_tile: int | None = None,
        col_tile: int = 4096,
        min_rows_per_thread: int = 2048,
        plane_elements: int = 4 * 1024 * 1024,
    ):
        # threads=None re-reads REPRO_BNN_THREADS on every call so a
        # long-lived server can be retuned without rebuilding plans;
        # autotuner variants pin an explicit count.
        self.threads = threads
        # row_tile=None sizes tiles from the plane-element budget (a
        # ~16 MB float32 scratch per thread by default — L2/L3 friendly).
        self.row_tile = row_tile
        self.col_tile = int(col_tile)
        self.min_rows_per_thread = int(min_rows_per_thread)
        self.plane_elements = int(plane_elements)
        self._scratch = threading.local()
        self._pool_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_size = 0
        self._variants: dict[str, ThreadedBitplaneKernel] = {}

    # -- registry variants ------------------------------------------------

    def variant(self, spec: str) -> "ThreadedBitplaneKernel":
        """``threaded@<threads>`` or ``threaded@<threads>:<row_tile>``."""
        cached = self._variants.get(spec)
        if cached is not None:
            return cached
        try:
            threads_part, _, tile_part = spec.partition(":")
            threads = max(1, int(threads_part))
            row_tile = int(tile_part) if tile_part else None
        except ValueError:
            raise KeyError(
                f"bad threaded variant {spec!r}; expected '<threads>' or "
                "'<threads>:<row_tile>', e.g. 'threaded@2' or 'threaded@2:8192'"
            ) from None
        kernel = ThreadedBitplaneKernel(
            threads=threads,
            row_tile=row_tile,
            col_tile=self.col_tile,
            min_rows_per_thread=self.min_rows_per_thread,
            plane_elements=self.plane_elements,
        )
        kernel.name = f"{self.name}@{spec}"
        self._variants[spec] = kernel
        return kernel

    # -- weight preparation ----------------------------------------------

    def prepare(self, w_words: np.ndarray, n: int):
        dtype = np.float32 if n < _F32_EXACT_LIMIT else np.float64
        plane = np.unpackbits(w_words, axis=1).astype(dtype) * 2.0 - 1.0
        correction = (n - 2 * popcount_rows(w_words)).astype(np.int64)
        # Keep the correction in GEMM dtype too: adding it inside the
        # float product is exact (|2p'+c| <= n < 2**24) and saves an
        # int64 pass on the hot path.
        return np.ascontiguousarray(plane.T), correction, correction.astype(dtype)

    # -- scheduling -------------------------------------------------------

    def _effective_threads(self, m: int) -> int:
        threads = resolve_bnn_threads(self.threads)
        # Small shapes stay serial: never spread fewer than
        # min_rows_per_thread rows per worker.
        if self.min_rows_per_thread > 0:
            threads = min(threads, max(1, m // self.min_rows_per_thread))
        return max(1, threads)

    def _row_tile_for(self, k8: int) -> int:
        if self.row_tile is not None:
            return max(1, int(self.row_tile))
        return max(1, self.plane_elements // max(1, k8))

    def _get_pool(self, size: int) -> ThreadPoolExecutor:
        # One lazily-grown pool per kernel instance; thread creation is
        # amortized across calls (a per-call pool would dominate small
        # matmuls).
        with self._pool_lock:
            if self._pool is None or self._pool_size < size:
                if self._pool is not None:
                    self._pool.shutdown(wait=False)
                self._pool = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="repro-bnn-gemm"
                )
                self._pool_size = size
            return self._pool

    def _buffers(self, tile: int, k8: int, n_tile: int, dtype: np.dtype):
        """Per-thread scratch: activation plane + product tile."""
        cache = getattr(self._scratch, "bufs", None)
        if cache is None:
            cache = self._scratch.bufs = {}
        key = (tile, k8, n_tile, dtype)
        bufs = cache.get(key)
        if bufs is None:
            plane = np.empty((tile, k8), dtype=dtype)
            prod = np.empty((tile, n_tile), dtype=dtype)
            bufs = cache[key] = (plane, prod)
        return bufs

    def _bit_buffer(self, tile: int, n_out: int) -> np.ndarray:
        """Per-thread bool scratch for the fused threshold epilogue."""
        cache = getattr(self._scratch, "bits", None)
        if cache is None:
            cache = self._scratch.bits = {}
        buf = cache.get((tile, n_out))
        if buf is None:
            buf = cache[(tile, n_out)] = np.empty((tile, n_out), dtype=np.bool_)
        return buf

    # -- the product ------------------------------------------------------

    def _run_slab(
        self,
        a_words: np.ndarray,
        w_plane_t: np.ndarray,
        corr_f: np.ndarray,
        out: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        dtype = w_plane_t.dtype
        k8 = a_words.shape[1] * 8
        n_out = w_plane_t.shape[1]
        table = _BYTE_PLANES[dtype]
        row_tile = self._row_tile_for(k8)
        col_tile = self.col_tile if n_out > self.col_tile else n_out
        for rs in range(start, stop, row_tile):
            re_ = min(rs + row_tile, stop)
            rows = re_ - rs
            plane_buf, prod_buf = self._buffers(row_tile, k8, col_tile, dtype)
            plane = plane_buf[:rows].reshape(rows, a_words.shape[1], 8)
            # Fused unpack: byte -> 8-wide bit plane, gathered straight
            # into the reusable scratch (bit-order matches unpackbits).
            # Indices are uint8 so they can never exceed 255; mode="clip"
            # skips the bounds-check pass.
            np.take(table, a_words[rs:re_], axis=0, out=plane, mode="clip")
            plane2d = plane_buf[:rows]
            for cs in range(0, n_out, col_tile):
                ce = min(cs + col_tile, n_out)
                prod = prod_buf[:rows, : ce - cs]
                np.matmul(plane2d, w_plane_t[:, cs:ce], out=prod)
                prod *= 2.0
                prod += corr_f[None, cs:ce]
                # Cast-assign into the caller's int64 slab; values are
                # exact integers so the cast is lossless.
                out[rs:re_, cs:ce] = prod

    def _run_slab_bits(
        self,
        a_words: np.ndarray,
        w_plane_t: np.ndarray,
        corr_f: np.ndarray,
        bound: np.ndarray,
        neg_mask: np.ndarray | None,
        out_words: np.ndarray,
        start: int,
        stop: int,
    ) -> None:
        """GEMM slab with the threshold decision fused into the epilogue.

        While the (rows × n_out) product tile is still cache-hot the bit
        decision ``2p' + c >= bound`` runs in the GEMM dtype (every value
        is an exact integer below the dtype's exact-int limit, so the
        compare matches the int64 path bit-for-bit), negative-sign
        columns are flipped, and the rows are packed straight into the
        caller's uint8 words — the int64 accumulator round-trip never
        touches memory.
        """
        dtype = w_plane_t.dtype
        k8 = a_words.shape[1] * 8
        n_out = w_plane_t.shape[1]
        table = _BYTE_PLANES[dtype]
        row_tile = self._row_tile_for(k8)
        for rs in range(start, stop, row_tile):
            re_ = min(rs + row_tile, stop)
            rows = re_ - rs
            plane_buf, prod_buf = self._buffers(row_tile, k8, n_out, dtype)
            plane = plane_buf[:rows].reshape(rows, a_words.shape[1], 8)
            np.take(table, a_words[rs:re_], axis=0, out=plane, mode="clip")
            prod = prod_buf[:rows]
            np.matmul(plane_buf[:rows], w_plane_t, out=prod)
            prod *= 2.0
            prod += corr_f[None, :]
            bits = self._bit_buffer(row_tile, n_out)[:rows]
            np.greater_equal(prod, bound[None, :], out=bits)
            if neg_mask is not None:
                bits[:, neg_mask] ^= True
            out_words[rs:re_] = np.packbits(bits, axis=1)

    def _slab_bounds(self, m: int, threads: int) -> list[tuple[int, int]]:
        # Contiguous row slabs, one per thread; bounds cover [0, m).
        base, extra = divmod(m, threads)
        bounds, pos = [], 0
        for i in range(threads):
            step = base + (1 if i < extra else 0)
            bounds.append((pos, pos + step))
            pos += step
        return bounds

    def matmul(
        self, a_words: np.ndarray, w_prep, n: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        w_plane_t, _correction, corr_f = w_prep
        m = a_words.shape[0]
        n_out = w_plane_t.shape[1]
        if out is None:
            out = np.empty((m, n_out), dtype=np.int64)
        threads = self._effective_threads(m)
        if threads <= 1 or m < 2:
            self._run_slab(a_words, w_plane_t, corr_f, out, 0, m)
        else:
            pool = self._get_pool(threads)
            futures = [
                pool.submit(
                    self._run_slab, a_words, w_plane_t, corr_f, out, lo, hi
                )
                for lo, hi in self._slab_bounds(m, threads)
                if hi > lo
            ]
            for future in futures:
                future.result()
        if _tracer.enabled():
            _tracer.gauge("kernel.threads", threads)
        return out

    def matmul_bits(
        self,
        a_words: np.ndarray,
        w_prep,
        n: int,
        bound: np.ndarray,
        neg_mask: np.ndarray | None,
        out_words: np.ndarray,
    ) -> np.ndarray:
        """Fused matmul + threshold: packed decision bits, no accumulator.

        ``bound`` is the per-output integer decision bound already cast to
        the GEMM dtype (exact: ``|bound| <= n + 1`` and f32 planes are
        only used for ``n < 2**24``); bit ``j`` of a row is
        ``dot >= bound[j]``, XOR-flipped where ``neg_mask`` is set.
        ``out_words`` must be ``(M, ceil(N/8))`` uint8.  Only valid when
        the output fits one column tile so packing never crosses tiles —
        callers fall back to :meth:`matmul` otherwise.
        """
        w_plane_t, _correction, corr_f = w_prep
        m = a_words.shape[0]
        n_out = w_plane_t.shape[1]
        if n_out > self.col_tile:
            raise ValueError(
                f"matmul_bits needs n_out <= col_tile ({n_out} > {self.col_tile})"
            )
        threads = self._effective_threads(m)
        if threads <= 1 or m < 2:
            self._run_slab_bits(
                a_words, w_plane_t, corr_f, bound, neg_mask, out_words, 0, m
            )
        else:
            pool = self._get_pool(threads)
            futures = [
                pool.submit(
                    self._run_slab_bits,
                    a_words, w_plane_t, corr_f, bound, neg_mask, out_words, lo, hi,
                )
                for lo, hi in self._slab_bounds(m, threads)
                if hi > lo
            ]
            for future in futures:
                future.result()
        if _tracer.enabled():
            _tracer.gauge("kernel.threads", threads)
        return out_words


register_kernel(ThreadedBitplaneKernel())
