"""uint64-word XOR backend with 16-bit lookup-table popcount.

Same arithmetic as the reference backend (``dot = n - 2 * popcount(xor)``)
but over 8-byte machine words: the (chunk, N, W) XOR broadcast holds 8x
fewer elements than the uint8 path, and the popcount is four table
gathers per word from a 64 KiB uint16 table — no ``np.bitwise_count``,
so this path is also the performant option on NumPy < 2.0 where the
native popcount ufunc does not exist.

Paper anchor: same FINN XNOR-popcount arithmetic as the reference
backend (Sec. II-B), bit-exact by construction — only the word width
and popcount mechanism differ.
"""

from __future__ import annotations

import numpy as np

from ..bitops import LUT16, words_u8_to_u64
from .base import BinaryKernel, register_kernel

__all__ = ["Lut64Kernel"]


class Lut64Kernel(BinaryKernel):
    """Chunked uint64 XOR + LUT16 popcount.

    Retired from the default autotune candidate list (``autotune=False``):
    BENCH_kernels.json shows it at 0.56x of reference on the dominant
    conv2 shape — the (chunk, N, W) XOR broadcast still materializes the
    full outer product, so the 8x element-count win never beats BLAS and
    rarely beats ``np.bitwise_count``.  It stays registered (opt-in via
    ``REPRO_BNN_BACKEND=lut64`` or ``backend="lut64"``) because it is the
    fastest *LUT-popcount* path on NumPy < 2.0 word-XOR workloads and a
    useful cross-check, but it no longer burns autotune time.
    """

    name = "lut64"
    autotune = False

    def __init__(self, chunk: int = 512):
        self.chunk = int(chunk)

    def prepare(self, w_words: np.ndarray, n: int):
        return words_u8_to_u64(w_words)

    def matmul(
        self, a_words: np.ndarray, w_prep: np.ndarray, n: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        a64 = words_u8_to_u64(a_words)
        m, n_out = a64.shape[0], w_prep.shape[0]
        if out is None:
            out = np.empty((m, n_out), dtype=np.int64)
        for start in range(0, m, self.chunk):
            block = a64[start : start + self.chunk]
            xor = block[:, None, :] ^ w_prep[None, :, :]
            # Each uint64 word popcounts as four uint16 table lookups.
            v16 = xor.view(np.uint16).reshape(block.shape[0], n_out, -1)
            disagreements = LUT16[v16].sum(axis=2, dtype=np.int64)
            out[start : start + self.chunk] = n - 2 * disagreements
        return out


register_kernel(Lut64Kernel())
