"""uint64-word XOR backend with 16-bit lookup-table popcount.

Same arithmetic as the reference backend (``dot = n - 2 * popcount(xor)``)
but over 8-byte machine words: the (chunk, N, W) XOR broadcast holds 8x
fewer elements than the uint8 path, and the popcount is four table
gathers per word from a 64 KiB uint16 table — no ``np.bitwise_count``,
so this path is also the performant option on NumPy < 2.0 where the
native popcount ufunc does not exist.

Paper anchor: same FINN XNOR-popcount arithmetic as the reference
backend (Sec. II-B), bit-exact by construction — only the word width
and popcount mechanism differ.
"""

from __future__ import annotations

import numpy as np

from ..bitops import LUT16, words_u8_to_u64
from .base import BinaryKernel, register_kernel

__all__ = ["Lut64Kernel"]


class Lut64Kernel(BinaryKernel):
    """Chunked uint64 XOR + LUT16 popcount."""

    name = "lut64"

    def __init__(self, chunk: int = 512):
        self.chunk = int(chunk)

    def prepare(self, w_words: np.ndarray, n: int):
        return words_u8_to_u64(w_words)

    def matmul(self, a_words: np.ndarray, w_prep: np.ndarray, n: int) -> np.ndarray:
        a64 = words_u8_to_u64(a_words)
        m, n_out = a64.shape[0], w_prep.shape[0]
        out = np.empty((m, n_out), dtype=np.int64)
        for start in range(0, m, self.chunk):
            block = a64[start : start + self.chunk]
            xor = block[:, None, :] ^ w_prep[None, :, :]
            # Each uint64 word popcounts as four uint16 table lookups.
            v16 = xor.view(np.uint16).reshape(block.shape[0], n_out, -1)
            disagreements = LUT16[v16].sum(axis=2, dtype=np.int64)
            out[start : start + self.chunk] = n - 2 * disagreements
        return out


register_kernel(Lut64Kernel())
