"""Kernel benchmark harness (``repro bench-kernels``).

Times every registered binary-kernel backend on (a) the individual matmul
shapes of the folded CNV network's binary layers and (b) end-to-end
folded inference, verifying bit-exactness along the way, and emits a JSON
report (``BENCH_kernels.json``) so the perf trajectory of the BNN
datapath is tracked in-repo from PR to PR.

The end-to-end leg runs an *untrained* width-scaled CNV: kernel
throughput does not depend on the weight values, so no training budget is
needed, and the same topology/scale is reproducible everywhere.

Paper anchors: the timed shapes are exactly the binary-layer workloads
of Table I's CNV (width-scaled); the report's ``finn_prediction``
section compares each layer's measured time share against the FINN
cycle model of Eqs. (3)-(5) at P = S = 1
(:func:`repro.obs.eq345_layer_residuals`).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .base import available_backends, get_kernel
from .select import select_backend, selection_cache_path

__all__ = [
    "KernelBenchConfig",
    "cnv_binary_shapes",
    "run_kernel_bench",
    "format_kernel_bench",
    "write_kernel_bench",
]


@dataclass(frozen=True)
class KernelBenchConfig:
    """One benchmark scenario.

    ``smoke`` shrinks batch/repetitions to a few seconds of runtime for
    CI, without changing the report schema.
    """

    scale: float = 0.25          # CNV width scale for shapes + end-to-end
    batch_size: int = 64         # images per folded forward
    num_images: int = 128        # end-to-end images timed
    repeats: int = 3             # best-of timing repetitions
    image_size: int = 32
    seed: int = 0
    smoke: bool = False

    def effective(self) -> "KernelBenchConfig":
        if not self.smoke:
            return self
        from dataclasses import replace

        return replace(self, batch_size=16, num_images=32, repeats=1)


def cnv_binary_shapes(scale: float, image_size: int = 32) -> list[dict]:
    """(label, M-per-image, N, n_bits) of every binary matmul in scaled CNV.

    ``n_out * n_bits * rows_per_image`` is each layer's Eq. (3)/(4) cycle
    count at P = S = 1, which is what :mod:`repro.obs.residuals` compares
    measured per-layer time against.
    """
    from ...models.finn_cnv import CNV_FC_WIDTH, scaled_channels

    c = scaled_channels(scale)
    shapes = []
    size = image_size
    sizes = []
    for i in range(6):
        size -= 2  # 3x3 conv, no padding
        sizes.append(size)
        if i in (1, 3):
            size //= 2  # 2x2 maxpool
    # conv1 is the real-valued-input engine (float GEMM) — not a binary matmul.
    for i in range(1, 6):
        shapes.append(
            {
                "label": f"conv{i + 1}",
                "rows_per_image": sizes[i] * sizes[i],
                "n_out": c[i],
                "n_bits": c[i - 1] * 9,
            }
        )
    flat = c[5] * sizes[5] * sizes[5]
    for j, (n_in, n_out) in enumerate(
        [(flat, CNV_FC_WIDTH), (CNV_FC_WIDTH, CNV_FC_WIDTH), (CNV_FC_WIDTH, CNV_FC_WIDTH)]
    ):
        shapes.append(
            {"label": f"fc{j + 1}", "rows_per_image": 1, "n_out": n_out, "n_bits": n_in}
        )
    return shapes


def _time_call(fn, repeats: int) -> float:
    fn()  # warmup
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_shapes(config: KernelBenchConfig, backends: tuple[str, ...]) -> list[dict]:
    rng = np.random.default_rng(config.seed)
    results = []
    for shape in cnv_binary_shapes(config.scale, config.image_size):
        m = shape["rows_per_image"] * config.batch_size
        n_out, n_bits = shape["n_out"], shape["n_bits"]
        words = -(-n_bits // 8)
        a = rng.integers(0, 256, size=(m, words), dtype=np.uint8)
        w = rng.integers(0, 256, size=(n_out, words), dtype=np.uint8)
        tail = n_bits % 8
        if tail:
            mask = np.uint8(0xFF << (8 - tail) & 0xFF)
            a[:, -1] &= mask
            w[:, -1] &= mask

        reference = None
        timings, exact = {}, {}

        def time_backend(name: str) -> None:
            nonlocal reference
            kernel = get_kernel(name)
            prep = kernel.prepare(w, n_bits)
            out = kernel.matmul(a, prep, n_bits)
            if reference is None:
                reference = out
            exact[name] = bool(np.array_equal(out, reference))
            timings[name] = _time_call(lambda: kernel.matmul(a, prep, n_bits), config.repeats)

        for name in backends:
            time_backend(name)
        # The autotuner races its own candidate list (thread-count variants
        # included, lut64 excluded); make sure the winner has a timing even
        # when it is a variant name like "threaded@2".
        autotuned = select_backend(m, n_out, n_bits)
        if autotuned not in timings:
            time_backend(autotuned)
        base = timings[backends[0]]
        results.append(
            {
                **shape,
                "m": m,
                "timings_s": timings,
                "speedup_vs_reference": {k: base / v for k, v in timings.items()},
                "bit_exact": exact,
                "autotuned": autotuned,
            }
        )
    return results


def _bench_end_to_end(config: KernelBenchConfig, backends: tuple[str, ...]) -> dict:
    from ...data import normalize_to_pm1, synthetic_cifar10
    from ...models import build_finn_cnv
    from ..inference import fold_network

    net = build_finn_cnv(scale=config.scale, rng=np.random.default_rng(config.seed))
    net.eval_mode()
    images = normalize_to_pm1(
        synthetic_cifar10(num_train=1, num_test=config.num_images, seed=config.seed).test.images
    )

    runs: dict[str, dict] = {}
    baseline_pred = None

    def record(label: str, num_classes: int, scores_fn) -> None:
        nonlocal baseline_pred
        pred = scores_fn()[:, :num_classes].argmax(axis=1)
        if baseline_pred is None:
            baseline_pred = pred
        seconds = _time_call(scores_fn, config.repeats)
        runs[label] = {
            "img_per_s": len(images) / seconds,
            "seconds": seconds,
            "predictions_match_reference": bool(np.array_equal(pred, baseline_pred)),
        }

    # Seed datapath first: reference kernel over the unpacked float
    # pipeline; then each backend over the uncompiled packed pipeline.
    # forward_uncompiled keeps these legs honest now that plain forward
    # auto-compiles.
    variants = [("reference (unpacked)", "reference", False)]
    variants += [(name, name, True) for name in backends]
    variants.append(("auto", "auto", True))
    for label, backend, packed in variants:
        folded = fold_network(net, backend=backend, packed=packed)
        record(
            label,
            folded.num_classes,
            lambda folded=folded: folded.forward_uncompiled(
                images, batch_size=config.batch_size
            ),
        )
    # Compiled-plan legs: the preplanned packed dataflow (the datapath
    # FoldedBNN.forward and the cascade server's BNN stage actually run),
    # plus an explicit thread sweep of the threaded GEMM backend.
    folded = fold_network(net, packed=True)
    compiled = [("compiled (auto)", "auto", None), ("compiled (bitplane)", "bitplane", None)]
    thread_counts = [1, 2] + ([4] if (os.cpu_count() or 1) >= 4 else [])
    compiled += [(f"compiled (threaded@{k})", "threaded", k) for k in thread_counts]
    for label, backend, threads in compiled:
        plan = folded.compile_inference(
            micro_batch=config.batch_size, backend=backend, threads=threads
        )
        record(label, folded.num_classes, lambda plan=plan: plan.forward(images))
    base = runs["reference (unpacked)"]["img_per_s"]
    for run in runs.values():
        run["speedup_vs_reference"] = run["img_per_s"] / base
    return {"num_images": len(images), "runs": runs}


def run_kernel_bench(
    config: KernelBenchConfig | None = None, backends: tuple[str, ...] | None = None
) -> dict:
    """Full benchmark report as a JSON-serializable dict."""
    config = (config or KernelBenchConfig()).effective()
    backends = tuple(backends) if backends else available_backends()
    if backends[0] != "reference":
        raise ValueError("backends must lead with 'reference' (the speedup baseline)")

    shapes = _bench_shapes(config, backends)
    # Dominant shape: where the reference kernel burns the most time.
    dominant = max(shapes, key=lambda s: s["timings_s"]["reference"])
    # Eqs. (3)-(5) check: predicted per-layer work share (cycle model at
    # P = S = 1) vs the measured time share of each layer's autotuned
    # backend — where the software datapath diverges from the FINN model.
    from ...obs.residuals import eq345_layer_residuals

    finn_prediction = eq345_layer_residuals(
        [
            {
                "label": s["label"],
                "rows_per_image": s["rows_per_image"],
                "n_out": s["n_out"],
                "n_bits": s["n_bits"],
                "measured_seconds": s["timings_s"][s["autotuned"]],
            }
            for s in shapes
        ]
    )
    report = {
        "config": {
            "scale": config.scale,
            "batch_size": config.batch_size,
            "num_images": config.num_images,
            "repeats": config.repeats,
            "smoke": config.smoke,
        },
        "environment": {
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "single_core": (os.cpu_count() or 1) <= 1,
            "note": (
                "single-core machine: threaded-GEMM legs cannot exceed 1x over "
                "threaded@1 here; re-run on a multi-core runner for real scaling"
                if (os.cpu_count() or 1) <= 1
                else f"{os.cpu_count()} cores available to the threaded GEMM backend"
            ),
            "selection_cache": str(selection_cache_path() or "disabled"),
        },
        "notes": {
            "lut64": (
                "retired from the default autotune candidates (trails reference "
                "on the dominant shape); still registered and opt-in via "
                "REPRO_BNN_BACKEND=lut64"
            ),
            "compiled": (
                "compiled legs run FoldedBNN.compile_inference (preallocated "
                "buffers, fused pack/GEMM/threshold, per-stage backend resolved "
                "once) — the datapath FoldedBNN.forward and the cascade server "
                "use by default"
            ),
        },
        "backends": list(backends),
        "shapes": shapes,
        "dominant_shape": {
            "label": dominant["label"],
            "speedup_vs_reference": dominant["speedup_vs_reference"],
            "autotuned": dominant["autotuned"],
        },
        "finn_prediction": finn_prediction,
        "end_to_end": _bench_end_to_end(config, backends),
    }
    return report


def format_kernel_bench(report: dict) -> str:
    """Human-readable summary of a :func:`run_kernel_bench` report."""
    from ...core.report import render_table

    backends = report["backends"]
    rows = []
    for s in report["shapes"]:
        rows.append(
            [
                s["label"],
                f"{s['m']}x{s['n_bits']}x{s['n_out']}",
                *(f"{s['timings_s'][b] * 1e3:.2f}" for b in backends),
                f"{max(s['speedup_vs_reference'].values()):.1f}x",
                s["autotuned"],
            ]
        )
    shape_table = render_table(
        ["layer", "MxKxN", *(f"{b} (ms)" for b in backends), "best", "autotuned"],
        rows,
        title=(
            f"binary-kernel matmul timings (CNV scale={report['config']['scale']}, "
            f"batch={report['config']['batch_size']})"
        ),
    )
    e2e_rows = [
        [label, f"{run['img_per_s']:.0f}", f"{run['speedup_vs_reference']:.2f}x",
         "yes" if run["predictions_match_reference"] else "NO"]
        for label, run in report["end_to_end"]["runs"].items()
    ]
    e2e_table = render_table(
        ["datapath", "img/s", "vs seed", "bit-exact"],
        e2e_rows,
        title=f"end-to-end folded CNV inference ({report['end_to_end']['num_images']} images)",
    )
    dom = report["dominant_shape"]
    note = (
        f"\ndominant shape: {dom['label']} — best backend "
        f"{max(dom['speedup_vs_reference'], key=dom['speedup_vs_reference'].get)} at "
        f"{max(dom['speedup_vs_reference'].values()):.1f}x the reference kernel "
        f"(autotuner picks {dom['autotuned']})."
    )
    finn = report.get("finn_prediction", [])
    finn_table = ""
    if finn:
        finn_rows = [
            [
                row["label"],
                f"{row['predicted_fraction']:.1%}",
                f"{row['measured_fraction']:.1%}",
                f"{row['residual_fraction']:+.1%}",
            ]
            for row in finn
        ]
        finn_table = "\n\n" + render_table(
            ["layer", "Eq.(3)/(4) share", "measured share", "residual"],
            finn_rows,
            title="FINN cycle-model (Eqs. 3-5) predicted vs measured time share",
        )
    return shape_table + "\n\n" + e2e_table + finn_table + note


def write_kernel_bench(report: dict, path: str | Path) -> Path:
    """Write the JSON artifact (``BENCH_kernels.json``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
