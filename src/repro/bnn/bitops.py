"""Portable popcount primitives for bit-packed arrays.

``numpy.bitwise_count`` only exists from NumPy 2.0 while the project
supports ``numpy>=1.24`` (pyproject), so every popcount in the BNN stack
routes through this module: the native ufunc when available, otherwise
lookup tables (8-bit for byte arrays, 16-bit for uint64 words).  The
tables are tiny (256 B / 64 KiB) and built once at import.

Also hosts the uint8 <-> uint64 word-view helper used by the ``lut64``
kernel: popcount is permutation-invariant, so viewing packed bytes as
wider words changes neither the counts nor the dot products.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HAVE_BITWISE_COUNT",
    "LUT8",
    "LUT16",
    "popcount",
    "popcount_rows",
    "popcount_u64",
    "words_u8_to_u64",
]

#: True when the native NumPy>=2.0 popcount ufunc is available.  Module
#: state (not a local) so tests can monkeypatch it to exercise the
#: lookup-table fallback on any NumPy.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Per-byte bit counts (pure-python init: 256 iterations at import).
LUT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

#: Per-uint16 bit counts, composed from the byte table.
_IDX16 = np.arange(65536, dtype=np.uint32)
LUT16 = (LUT8[_IDX16 >> 8] + LUT8[_IDX16 & 0xFF]).astype(np.uint8)
del _IDX16


def popcount(words: np.ndarray) -> np.ndarray:
    """Elementwise set-bit count of a uint8 array."""
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(words)
    return LUT8[words]


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Elementwise set-bit count of a uint64 array (result uint8)."""
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.uint8, copy=False)
    # Four 16-bit lookups per word; the view requires a contiguous last axis.
    v16 = np.ascontiguousarray(words).view(np.uint16)
    counts = LUT16[v16]
    return counts.reshape(*words.shape, 4).sum(axis=-1, dtype=np.uint8)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row total set bits of a packed (M, B) uint8 matrix, as int64."""
    return popcount(words).sum(axis=-1, dtype=np.int64)


def words_u8_to_u64(words: np.ndarray) -> np.ndarray:
    """Reinterpret packed (M, B) uint8 rows as (M, ceil(B/8)) uint64 words.

    Rows are zero-padded to an 8-byte multiple first; pad bytes carry no
    set bits, so XOR/popcount arithmetic over the widened words is
    unchanged.
    """
    m, b = words.shape
    w64 = -(-b // 8)
    if b != w64 * 8:
        padded = np.zeros((m, w64 * 8), dtype=np.uint8)
        padded[:, :b] = words
        words = padded
    return np.ascontiguousarray(words).view(np.uint64)
