"""Binarization primitives (BinaryNet, Courbariaux & Bengio 2016).

The deterministic ``sign`` binarization used by BinaryNet/FINN maps to
{-1, +1} with the convention ``sign(0) = +1`` (FINN encodes +1 as bit 1,
0 as bit 0, and treats an exact zero as +1).
"""

from __future__ import annotations

import numpy as np

from ..nn.parameter import Parameter

__all__ = ["binarize_sign", "ste_mask", "clip_weights"]


def binarize_sign(x: np.ndarray) -> np.ndarray:
    """Deterministic sign binarization to {-1.0, +1.0} with sign(0) = +1."""
    return np.where(x >= 0.0, 1.0, -1.0)


def ste_mask(x: np.ndarray) -> np.ndarray:
    """Straight-through-estimator gradient mask for sign(x).

    BinaryNet backpropagates through sign() as if it were hard-tanh:
    gradient 1 inside [-1, 1], 0 outside (gradient cancellation).
    """
    return (np.abs(x) <= 1.0).astype(x.dtype)


def clip_weights(param: Parameter) -> None:
    """Post-update hook clipping latent real-valued weights to [-1, 1].

    BinaryNet keeps real-valued 'latent' weights during training and clips
    them after every optimizer step so they stay in the binarization range.
    Bias-like 1-D parameters are left untouched.
    """
    if param.value.ndim >= 2 and param.name.endswith("weight"):
        np.clip(param.value, -1.0, 1.0, out=param.value)
