"""Packed bit-tensor containers flowing between folded BNN stages.

FINN keeps activations as bit vectors end-to-end; the functional model
does the same.  Two containers cover the datapath:

* :class:`PackedRows` — matmul operands: (M, B) uint8 rows, ``n`` valid
  bits each.  ``layout`` records the bit ordering so consumers can align
  their weight columns (``None`` = plain feature order; ``("hwc", H, W,
  C)`` = flattened conv maps, see below).
* :class:`PackedMaps` — spatial feature maps: (N, H, W, Bc) uint8, each
  pixel holding its C channel bits padded to whole bytes.

The spatial layout packs **channels innermost** so a packed im2col is a
pure byte-gather (:func:`repro.nn.functional.im2col_packed`): receptive
fields concatenate whole pixel byte-groups in (kh, kw, c) order.  Weight
matrices, stored in the conventional (c, kh, kw) column order, are
permuted once at fold time to match (:func:`conv_weight_words`,
:func:`dense_weight_words_hwc`).  Channel padding bits are zero in both
operands and excluded from ``n``, which the kernel contract
(:mod:`repro.bnn.kernels.base`) makes free.

Bit 1 encodes +1, bit 0 encodes -1, as everywhere in :mod:`repro.bnn`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PackedRows",
    "PackedMaps",
    "conv_weight_words",
    "dense_weight_words_hwc",
    "maxpool_packed",
]


def _channel_bytes(channels: int) -> int:
    return -(-channels // 8)


@dataclass(frozen=True)
class PackedRows:
    """Bit-packed ±1 matrix: (M, B) uint8 words, ``n`` valid bits per row."""

    words: np.ndarray
    n: int
    layout: tuple | None = None

    def __post_init__(self):
        if self.words.ndim != 2 or self.words.dtype != np.uint8:
            raise ValueError("PackedRows.words must be a 2-D uint8 array")

    @property
    def num_rows(self) -> int:
        return int(self.words.shape[0])

    def to_pm1(self) -> np.ndarray:
        """Unpack to a float64 (M, n) ±1 matrix in plain feature order."""
        if self.layout is None:
            bits = np.unpackbits(self.words, axis=1)[:, : self.n]
            return bits.astype(np.float64) * 2.0 - 1.0
        tag, h, w, c = self.layout
        if tag != "hwc":
            raise ValueError(f"unknown PackedRows layout {self.layout!r}")
        m = self.words.shape[0]
        bits = np.unpackbits(self.words, axis=1)
        bits = bits.reshape(m, h, w, _channel_bytes(c) * 8)[..., :c]
        # (h, w, c) bit order back to the (c, h, w) flatten convention.
        return bits.transpose(0, 3, 1, 2).reshape(m, c * h * w).astype(np.float64) * 2.0 - 1.0


@dataclass(frozen=True)
class PackedMaps:
    """Bit-packed ±1 feature maps: (N, H, W, Bc) uint8, C valid channels."""

    words: np.ndarray
    channels: int

    def __post_init__(self):
        if self.words.ndim != 4 or self.words.dtype != np.uint8:
            raise ValueError("PackedMaps.words must be a 4-D uint8 array")
        if self.words.shape[3] != _channel_bytes(self.channels):
            raise ValueError(
                f"expected {_channel_bytes(self.channels)} bytes per pixel for "
                f"{self.channels} channels, got {self.words.shape[3]}"
            )

    @property
    def batch(self) -> int:
        return int(self.words.shape[0])

    @property
    def height(self) -> int:
        return int(self.words.shape[1])

    @property
    def width(self) -> int:
        return int(self.words.shape[2])

    def flatten_rows(self) -> PackedRows:
        """Byte-level flatten for a dense stage (layout ``("hwc", H, W, C)``)."""
        n, h, w, b = self.words.shape
        return PackedRows(
            words=np.ascontiguousarray(self.words.reshape(n, h * w * b)),
            n=self.channels * h * w,
            layout=("hwc", h, w, self.channels),
        )

    def to_pm1(self) -> np.ndarray:
        """Unpack to float64 NCHW ±1 maps."""
        bits = np.unpackbits(self.words, axis=3)[..., : self.channels]
        return bits.transpose(0, 3, 1, 2).astype(np.float64) * 2.0 - 1.0


def conv_weight_words(weight_matrix: np.ndarray, in_channels: int, kernel_size: int) -> np.ndarray:
    """Pack a (OD, C*K*K) ±1 conv weight matrix into the packed-im2col layout.

    Columns arrive in the (c, kh, kw) order :func:`repro.nn.functional.im2col`
    produces; the packed path consumes (kh, kw, c-padded) byte groups, so
    permute, zero-pad channels to whole bytes, and pack.
    """
    od = weight_matrix.shape[0]
    k = kernel_size
    w4 = weight_matrix.reshape(od, in_channels, k, k)
    padded = np.zeros((od, k, k, _channel_bytes(in_channels) * 8), dtype=np.uint8)
    padded[..., :in_channels] = (w4 > 0).transpose(0, 2, 3, 1)
    return np.packbits(padded.reshape(od, -1), axis=1)


def dense_weight_words_hwc(weight_matrix: np.ndarray, h: int, w: int, c: int) -> np.ndarray:
    """Pack a (OD, C*H*W) ±1 dense weight matrix for ``("hwc", H, W, C)`` input.

    The training-side ``Flatten`` emits (c, h, w) feature order; packed conv
    maps flatten as (h, w, c-padded) byte groups instead.
    """
    od, features = weight_matrix.shape
    if features != c * h * w:
        raise ValueError(f"weight fan-in {features} != {c}*{h}*{w}")
    w3 = weight_matrix.reshape(od, c, h, w)
    padded = np.zeros((od, h, w, _channel_bytes(c) * 8), dtype=np.uint8)
    padded[..., :c] = (w3 > 0).transpose(0, 2, 3, 1)
    return np.packbits(padded.reshape(od, -1), axis=1)


def maxpool_packed(maps: PackedMaps, window: int, stride: int) -> PackedMaps:
    """Max-pool ±1 maps in bit form: a bitwise OR over each window.

    ``max`` over {-1, +1} is +1 iff any element is +1 — exactly the OR of
    the bit encodings, which is how FINN implements binary max pooling in
    hardware ("boolean OR", paper Section II).
    """
    words = maps.words
    n, h, w, b = words.shape
    oh = (h - window) // stride + 1
    ow = (w - window) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"window {window} (stride {stride}) does not fit {h}x{w} maps")
    sn, sh, sw, sb = words.strides
    windows = np.lib.stride_tricks.as_strided(
        words,
        shape=(n, oh, ow, window, window, b),
        strides=(sn, sh * stride, sw * stride, sh, sw, sb),
        writeable=False,
    )
    return PackedMaps(np.bitwise_or.reduce(windows, axis=(3, 4)), maps.channels)
