"""BatchNorm-to-threshold folding.

FINN deploys BNNs by absorbing each BatchNorm + sign() pair into a
per-channel threshold on the integer XNOR-popcount accumulator:

    sign(gamma * (y - mu) / sqrt(var + eps) + beta)
        == +1  iff  s * (y - tau) >= 0

with ``tau = mu - beta * sqrt(var + eps) / gamma`` and ``s = sign(gamma)``
(for ``gamma == 0`` the output is the constant ``sign(beta)``).  This is
the "compare against a threshold for binarized activation" datapath the
paper describes in Section II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers.batchnorm import BatchNorm

__all__ = ["ChannelThresholds", "fold_batchnorm"]


@dataclass(frozen=True)
class ChannelThresholds:
    """Per-channel threshold comparison parameters.

    ``apply(y)`` reproduces ``sign(batchnorm(y))`` exactly (eval-mode
    statistics), including the ``sign(0) = +1`` convention.
    """

    tau: np.ndarray          # (channels,) threshold on the accumulator
    sign: np.ndarray         # (channels,) in {-1, 0, +1}; 0 = constant output
    constant: np.ndarray     # (channels,) output used where sign == 0

    def __post_init__(self):
        if not (self.tau.shape == self.sign.shape == self.constant.shape):
            raise ValueError("threshold component shapes must match")

    @property
    def num_channels(self) -> int:
        return int(self.tau.shape[0])

    def apply(self, y: np.ndarray, channel_axis: int = 1) -> np.ndarray:
        """Threshold accumulator ``y`` to {-1, +1} along ``channel_axis``."""
        if y.shape[channel_axis] != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} channels on axis {channel_axis}, "
                f"got {y.shape[channel_axis]}"
            )
        shape = [1] * y.ndim
        shape[channel_axis] = self.num_channels
        tau = self.tau.reshape(shape)
        sgn = self.sign.reshape(shape)
        const = self.constant.reshape(shape)
        decided = np.where(sgn * (y - tau) >= 0.0, 1.0, -1.0)
        return np.where(sgn == 0, const, decided)

    def apply_bits(self, y: np.ndarray) -> np.ndarray:
        """Threshold a (M, channels) accumulator straight to packed bits.

        Returns (M, ceil(channels/8)) uint8 with bit 1 encoding +1 —
        identical decisions to :meth:`apply` (including the ``sign(0) =
        +1`` convention and the ``sign == 0`` constant channels) without
        materializing the ±1 float intermediate.
        """
        if y.ndim != 2 or y.shape[1] != self.num_channels:
            raise ValueError(
                f"apply_bits expects (M, {self.num_channels}) accumulators, "
                f"got shape {y.shape}"
            )
        decided = self.sign[None, :] * (y - self.tau[None, :]) >= 0.0
        bits = np.where(self.sign[None, :] == 0, self.constant[None, :] > 0, decided)
        return np.packbits(bits, axis=1)


def fold_batchnorm(bn: BatchNorm) -> ChannelThresholds:
    """Fold an eval-mode BatchNorm + sign() into channel thresholds."""
    gamma = bn.gamma.value
    beta = bn.beta.value
    mu = bn.running_mean.value
    std = np.sqrt(bn.running_var.value + bn.eps)

    sign = np.sign(gamma)
    with np.errstate(divide="ignore", invalid="ignore"):
        tau = np.where(gamma != 0.0, mu - beta * std / np.where(gamma == 0, 1.0, gamma), 0.0)
    constant = np.where(beta >= 0.0, 1.0, -1.0)
    return ChannelThresholds(tau=tau, sign=sign, constant=constant)
