"""Bit-packed XNOR-popcount arithmetic.

FINN's compute engines evaluate binarized dot products as
``dot = n - 2 * popcount(xor(a, w))`` over bit vectors where bit 1 encodes
+1 and bit 0 encodes -1.  This module implements the identical arithmetic
with numpy ``uint8`` words so the functional simulator computes bit-exact
FINN results.
"""

from __future__ import annotations

import numpy as np

from .bitops import popcount

__all__ = ["pack_pm1", "unpack_pm1", "xnor_popcount_matmul", "binary_dot"]


def pack_pm1(values: np.ndarray, validate: bool = True) -> tuple[np.ndarray, int]:
    """Pack a {-1, +1} matrix (M, n) into uint8 bit words.

    Returns ``(packed, n)`` where ``packed`` has shape (M, ceil(n/8)).
    Padding bits are 0; the matmul corrects for them using ``n``.

    ``validate=False`` skips the domain check — an O(M*n) extra pass and
    allocation — and is used by the folded inference stages, whose inputs
    are thresholder outputs already guaranteed to be in {-1, +1}.  Public
    callers should keep the default.
    """
    values = np.asarray(values)
    if values.ndim == 1:
        values = values[None, :]
    if validate and not np.isin(values, (-1.0, 1.0)).all():
        raise ValueError("pack_pm1 expects values in {-1, +1}")
    bits = (values > 0).astype(np.uint8)
    return np.packbits(bits, axis=1), values.shape[1]


def unpack_pm1(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_pm1`."""
    bits = np.unpackbits(packed, axis=1)[:, :n]
    return bits.astype(np.float64) * 2.0 - 1.0


def _popcount(words: np.ndarray) -> np.ndarray:
    # ``np.bitwise_count`` needs NumPy>=2.0; bitops falls back to a
    # lookup table on older installs (pyproject allows numpy>=1.24).
    return popcount(words)


def xnor_popcount_matmul(
    a_packed: np.ndarray, w_packed: np.ndarray, n: int, chunk: int = 512
) -> np.ndarray:
    """Binarized matrix product in +-1 algebra.

    Parameters
    ----------
    a_packed:
        (M, B) packed activations (rows are receptive fields).
    w_packed:
        (N, B) packed weights (rows are output channels / neurons).
    n:
        True (unpadded) vector length.
    chunk:
        Row chunking to bound the (chunk, N, B) intermediate.

    Returns
    -------
    numpy.ndarray
        (M, N) int64 matrix of +-1 dot products.

    Notes
    -----
    Padding bits are 0 in both operands, so XOR over the pad region is 0
    and popcount counts only disagreements plus nothing spurious... except
    that a 0/0 pad pair *agrees*, inflating agreement count.  Using
    ``dot = n - 2 * (popcount(xor) - pad_disagreements)`` with zero pad on
    both sides, ``xor`` is 0 on pads, so ``popcount(xor)`` counts only true
    disagreements within the first ``n`` bits: dot = n - 2 * popcount(xor).
    """
    if a_packed.shape[1] != w_packed.shape[1]:
        raise ValueError("operand word widths differ")
    m = a_packed.shape[0]
    n_out = w_packed.shape[0]
    out = np.empty((m, n_out), dtype=np.int64)
    for start in range(0, m, chunk):
        block = a_packed[start : start + chunk]
        xor = block[:, None, :] ^ w_packed[None, :, :]
        disagreements = _popcount(xor).sum(axis=2, dtype=np.int64)
        out[start : start + chunk] = n - 2 * disagreements
    return out


def binary_dot(a: np.ndarray, b: np.ndarray) -> int:
    """Scalar +-1 dot product via the packed path (reference/testing)."""
    ap, n = pack_pm1(a.reshape(1, -1))
    bp, _ = pack_pm1(b.reshape(1, -1))
    return int(xnor_popcount_matmul(ap, bp, n)[0, 0])
