"""Cache + single-flight wrapper around any ``submit() -> Future`` backend.

:class:`CachingFrontend` sits in front of a
:class:`repro.serve.CascadeServer` (or any object with the same
``submit``/``snapshot``/``close`` surface) and short-circuits duplicate
work twice over:

* **Cache hit** — the image's content key is already in the
  :class:`~repro.cache.ResultCache`: the stored terminal answer is
  re-served immediately as a ``ServeResult`` with ``source="cache"``
  (``cold_source`` preserves the rung that computed it), and the
  backend never sees the request.
* **Single flight** — the key is *not* cached but an identical image is
  already in the cascade: the new submit attaches to the in-flight
  *leader* instead of entering the cascade, and when the leader's
  future resolves every attached *follower* future is resolved with the
  same answer (as a ``source="cache"`` result).  N concurrent submits
  of one image cost exactly one cascade pass.

Books (shared :class:`repro.serve.ServerMetrics`): the hit and follower
paths record ``submitted`` + ``cache_hits`` + a latency sample at the
frontend; the leader path records nothing here — the backend books its
``submitted`` and terminal decision itself — so
``accepted + rerun + degraded + cache_hits + failed == submitted``
keeps holding with the wrapper attached.  Exactly-once: a flight is
popped from the registry before its followers are resolved, so no
future can ever be resolved twice; a failed leader fails its followers
with the same exception and caches nothing.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..serve.metrics import MetricsSnapshot, ServerMetrics
from ..serve.server import ServeResult
from .result_cache import CachedAnswer, CacheSnapshot, ResultCache

__all__ = ["CachingFrontend", "SingleFlightSnapshot"]


@dataclass(frozen=True)
class SingleFlightSnapshot:
    """Deduplication books of one :class:`CachingFrontend`."""

    leaders: int      # cache misses that entered the cascade
    followers: int    # submits coalesced onto an in-flight leader
    in_flight: int    # flights currently open


class _Flight:
    __slots__ = ("followers",)

    def __init__(self):
        # (follower future, submit timestamp) pairs; resolved exactly
        # once when the leader terminates.
        self.followers: list[tuple[Future, float]] = []


class CachingFrontend:
    """Content-addressed cache + single-flight in front of *backend*.

    Parameters
    ----------
    backend:
        Anything exposing ``submit(image) -> Future[ServeResult]`` —
        typically a :class:`repro.serve.CascadeServer`.  Attribute
        access not defined here (``resize_host_workers``,
        ``threshold``, ...) is delegated to it.
    cache:
        The shared :class:`ResultCache`.  Several frontends (tenants)
        may share one cache as long as their *namespace* differs.
    namespace:
        Cache-key namespace, e.g. the tenant name — the same image
        classified by two different models must occupy two entries.
    metrics:
        Books to record hit/follower accounting into.  Defaults to the
        backend's own ``metrics`` so one snapshot covers both layers.
    """

    def __init__(
        self,
        backend,
        cache: ResultCache,
        namespace: str = "",
        metrics: ServerMetrics | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._backend = backend
        self.cache = cache
        self.namespace = namespace
        self._clock = clock
        if metrics is None:
            metrics = getattr(backend, "metrics", None)
        self.metrics = metrics if metrics is not None else ServerMetrics(clock=clock)
        self._flights: dict[bytes, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._leaders = 0
        self._followers = 0

    # -- submit path ----------------------------------------------------------
    def submit(self, image: np.ndarray) -> Future:
        """Serve *image* from cache / an in-flight duplicate / the backend."""
        image = np.asarray(image)
        start = self._clock()
        key = self.cache.key_for(image, self.namespace)
        with self._flight_lock:
            answer = self.cache.get(key, image)
            if answer is not None:
                return self._serve_hit(answer, start)
            flight = self._flights.get(key)
            if flight is not None:
                future: Future = Future()
                flight.followers.append((future, start))
                self._followers += 1
                self.metrics.record_submitted(1)
                obs.count("cache.single_flight", 1)
                return future
            flight = _Flight()
            self._flights[key] = flight
            self._leaders += 1
        # Leader path: enter the cascade *outside* the lock — submit()
        # blocks under backpressure and must not hold up other keys.
        try:
            leader_future = self._backend.submit(image)
        except BaseException as exc:
            self._finish_flight(key, None, exc)
            raise
        leader_future.add_done_callback(
            lambda fut, key=key, image=image: self._on_leader_done(key, image, fut)
        )
        return leader_future

    def classify_many(self, images, timeout: float | None = None) -> list[ServeResult]:
        futures = [self.submit(img) for img in images]
        return [f.result(timeout=timeout) for f in futures]

    def _serve_hit(self, answer: CachedAnswer, start: float) -> Future:
        self.metrics.record_submitted(1)
        self.metrics.record_cache_hit(1)
        latency = self._clock() - start
        self.metrics.record_latency(latency)
        future: Future = Future()
        future.set_result(self._cached_result(answer, latency))
        return future

    @staticmethod
    def _cached_result(answer: CachedAnswer, latency: float) -> ServeResult:
        return ServeResult(
            prediction=answer.prediction,
            bnn_prediction=answer.bnn_prediction,
            confidence=answer.confidence,
            source="cache",
            latency_seconds=latency,
            cold_source=answer.source,
        )

    # -- leader termination ---------------------------------------------------
    def _on_leader_done(self, key: bytes, image: np.ndarray, fut: Future) -> None:
        exc = fut.exception()
        if exc is not None:
            self._finish_flight(key, None, exc)
            return
        result: ServeResult = fut.result()
        answer = CachedAnswer(
            prediction=result.prediction,
            bnn_prediction=result.bnn_prediction,
            confidence=result.confidence,
            source=result.source,
        )
        # Populate the cache *before* closing the flight so no submit
        # can slip between them and miss both tiers.
        self.cache.put(key, image, answer)
        self.metrics.set_cache_bytes(self.cache.bytes)
        self._finish_flight(key, answer, None)

    def _finish_flight(
        self, key: bytes, answer: CachedAnswer | None, exc: BaseException | None
    ) -> None:
        # Pop first: once a flight has left the registry nothing can
        # attach to it, and its followers are resolved exactly once.
        with self._flight_lock:
            flight = self._flights.pop(key, None)
        if flight is None:
            return
        for future, start in flight.followers:
            if exc is not None:
                self.metrics.record_failure(1)
                future.set_exception(exc)
            else:
                self.metrics.record_cache_hit(1)
                latency = self._clock() - start
                self.metrics.record_latency(latency)
                future.set_result(self._cached_result(answer, latency))

    # -- reading / lifecycle --------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        self.metrics.set_cache_bytes(self.cache.bytes)
        return self.metrics.snapshot()

    def cache_snapshot(self) -> CacheSnapshot:
        return self.cache.snapshot()

    def single_flight_snapshot(self) -> SingleFlightSnapshot:
        with self._flight_lock:
            return SingleFlightSnapshot(
                leaders=self._leaders,
                followers=self._followers,
                in_flight=len(self._flights),
            )

    def close(self, *args, **kwargs) -> None:
        close = getattr(self._backend, "close", None)
        if close is not None:
            close(*args, **kwargs)

    def __enter__(self) -> "CachingFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name: str):
        # Everything not cache-specific (threshold, resize_host_workers,
        # degraded_mode, ...) belongs to the wrapped backend.
        return getattr(self._backend, name)
