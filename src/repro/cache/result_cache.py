"""Byte-bounded sharded LRU of terminal cascade answers.

The cache stores :class:`CachedAnswer` values — the (prediction,
bnn_prediction, confidence, source) tuple of a terminal
:class:`repro.serve.ServeResult` — under the blake2b content key of the
raw image bytes (:func:`repro.util.hashing.content_key`).  Answers are
tiny; what bounds the cache is the *byte* budget, which matters once
the near-duplicate tier keeps canonical images around for its compare
gate.

Concurrency: the key space is split across ``shards`` independent
locks (key bytes pick the shard), so concurrent tenants and serving
threads never serialize on one cache-wide mutex; the counters live
behind one separate, cheap counter lock.

Near-duplicate tier (optional, for video): every stored image is also
indexed by a **quantized thumbnail fingerprint** — block-mean
downsample to ``thumb_size``², quantized to ``quant_levels`` — and a
lookup that misses the exact tier probes the fingerprint index.  A
fingerprint match alone never produces a hit: the candidate entry's
canonical image is compared against the query through the ``atol``
gate, and with the default ``atol=0.0`` the gate passes only
bit-identical buffers, so every hit the cache ever serves is exactly
the answer a cold run would have produced.  Setting ``atol > 0``
opts into *approximate* reuse (consecutive video crops that differ by
sensor noise), explicitly trading bit-identity for hit rate.

Books: ``hits + misses == lookups`` always (the reconciliation
``repro serve-bench`` and ``repro serve-tenants`` exit nonzero
without), with ``near_hits`` counting the subset of hits that came
through the fingerprint tier.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..util.hashing import content_key

__all__ = ["CachedAnswer", "CacheSnapshot", "ResultCache"]

#: Fixed per-entry bookkeeping cost (key, answer, dict slots) charged
#: against the byte budget even when no canonical image is stored.
ENTRY_OVERHEAD_BYTES = 160


@dataclass(frozen=True)
class CachedAnswer:
    """Terminal answer of one cascade pass, minus its transport fields.

    ``source`` is the rung that produced the cold answer ("bnn",
    "host", a ladder rung name, ...); a cache hit is re-served with
    ``ServeResult.source == "cache"`` and this value preserved as
    :attr:`cold_source` provenance by :class:`repro.cache.CachingFrontend`.
    """

    prediction: int
    bnn_prediction: int
    confidence: float
    source: str


@dataclass(frozen=True)
class CacheSnapshot:
    """Point-in-time cache books; ``hits + misses == lookups`` always."""

    lookups: int
    hits: int
    misses: int
    near_hits: int        # hits served through the fingerprint tier
    near_rejects: int     # fingerprint matched but the compare gate refused
    insertions: int
    evictions: int
    entries: int
    bytes: int
    max_bytes: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def balanced(self) -> bool:
        """The cache books reconcile (CI gate of the bench harnesses)."""
        return self.hits + self.misses == self.lookups


class _Entry:
    __slots__ = ("answer", "image", "fingerprint", "nbytes")

    def __init__(self, answer, image, fingerprint, nbytes):
        self.answer = answer
        self.image = image              # canonical pixels (near-dup gate) or None
        self.fingerprint = fingerprint  # bytes or None
        self.nbytes = nbytes


class _Shard:
    __slots__ = ("lock", "entries", "bytes")

    def __init__(self):
        self.lock = threading.Lock()
        self.entries: OrderedDict[bytes, _Entry] = OrderedDict()
        self.bytes = 0


class ResultCache:
    """Sharded-lock LRU of :class:`CachedAnswer`, bounded by bytes.

    Parameters
    ----------
    max_bytes:
        Total byte budget across all shards (entries + stored images).
    shards:
        Independent lock domains (power of two recommended).
    near_duplicate:
        Enable the fingerprint tier.  Stores each entry's canonical
        image (costed against ``max_bytes``) so the compare gate can
        guarantee bit-identity at ``atol=0``.
    thumb_size, quant_levels:
        Fingerprint resolution: block-mean thumbnail side and the
        number of quantization levels.
    atol:
        Compare-gate tolerance.  ``0.0`` (default) admits only
        bit-identical images — cache hits are exactly cold-run answers.
        ``> 0`` admits near-duplicates within that absolute tolerance.
    """

    def __init__(
        self,
        max_bytes: int = 64 * 1024 * 1024,
        shards: int = 8,
        near_duplicate: bool = False,
        thumb_size: int = 8,
        quant_levels: int = 32,
        atol: float = 0.0,
    ):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if thumb_size < 1 or quant_levels < 2:
            raise ValueError("thumb_size must be >= 1 and quant_levels >= 2")
        if atol < 0:
            raise ValueError("atol must be >= 0")
        self.max_bytes = int(max_bytes)
        self.near_duplicate = bool(near_duplicate)
        self.thumb_size = int(thumb_size)
        self.quant_levels = int(quant_levels)
        self.atol = float(atol)
        self._shards = [_Shard() for _ in range(shards)]
        self._shard_budget = max(1, self.max_bytes // shards)
        # Near-duplicate index is global, not per-shard: two near-identical
        # images have *different* content keys and would land in different
        # shards, so a per-shard index would never connect them.
        self._fp_lock = threading.Lock()
        self._fp_index: dict[bytes, bytes] = {}  # fingerprint -> canonical key
        self._counter_lock = threading.Lock()
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._near_hits = 0
        self._near_rejects = 0
        self._insertions = 0
        self._evictions = 0

    # -- keying ---------------------------------------------------------------
    @staticmethod
    def key_for(image: np.ndarray, namespace: str = "") -> bytes:
        """Content key of *image* (optionally namespaced per tenant)."""
        return content_key(image, namespace)

    def _shard_for(self, key: bytes) -> _Shard:
        return self._shards[int.from_bytes(key[:4], "big") % len(self._shards)]

    # -- fingerprint tier -----------------------------------------------------
    def fingerprint(self, image: np.ndarray) -> bytes:
        """Quantized-thumbnail fingerprint of *image* (near-dup bucket).

        Channel-mean block downsample to ``thumb_size``² then uniform
        quantization to ``quant_levels`` over the thumbnail's own
        range — cheap, deterministic, and stable under small per-pixel
        noise (the whole point: noisy re-crops of one frame bucket
        together, the exact gate then arbitrates).
        """
        pixels = np.asarray(image, dtype=np.float64)
        flat = pixels.reshape(-1)
        side = self.thumb_size
        cells = side * side
        # Pad to a multiple of the cell count, then block-mean.
        pad = (-len(flat)) % cells
        if pad:
            flat = np.concatenate([flat, np.zeros(pad)])
        thumb = flat.reshape(cells, -1).mean(axis=1)
        lo, hi = float(thumb.min()), float(thumb.max())
        scale = (self.quant_levels - 1) / (hi - lo) if hi > lo else 0.0
        quantized = np.round((thumb - lo) * scale).astype(np.uint8)
        return quantized.tobytes()

    def _gate(self, stored: np.ndarray, query: np.ndarray) -> bool:
        """Exact-by-default compare gate of the fingerprint tier."""
        if stored.shape != query.shape or stored.dtype != query.dtype:
            return False
        if self.atol == 0.0:
            return stored.tobytes() == query.tobytes()
        return bool(np.allclose(stored, query, rtol=0.0, atol=self.atol))

    # -- lookup / insert ------------------------------------------------------
    def get(self, key: bytes, image: np.ndarray | None = None) -> CachedAnswer | None:
        """Look up *key*; probe the fingerprint tier on an exact miss.

        *image* is required for the fingerprint tier (there is nothing
        to gate against without the query pixels); exact lookups work
        from the key alone.
        """
        shard = self._shard_for(key)
        near = False
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is not None:
                shard.entries.move_to_end(key)
        if entry is None and self.near_duplicate and image is not None:
            with self._fp_lock:
                candidate_key = self._fp_index.get(self.fingerprint(image))
            if candidate_key is not None and candidate_key != key:
                cshard = self._shard_for(candidate_key)
                with cshard.lock:
                    candidate = cshard.entries.get(candidate_key)
                    if candidate is not None and candidate.image is not None:
                        if self._gate(candidate.image, np.asarray(image)):
                            entry = candidate
                            near = True
                            cshard.entries.move_to_end(candidate_key)
                        else:
                            with self._counter_lock:
                                self._near_rejects += 1
        with self._counter_lock:
            self._lookups += 1
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
                if near:
                    self._near_hits += 1
        if entry is None:
            obs.count("cache.miss", 1)
            return None
        obs.count("cache.hit", 1)
        return entry.answer

    def put(self, key: bytes, image: np.ndarray, answer: CachedAnswer) -> None:
        """Insert (idempotent per key); evicts LRU entries over budget."""
        image = np.asarray(image)
        stored = image.copy() if self.near_duplicate else None
        fingerprint = self.fingerprint(image) if self.near_duplicate else None
        nbytes = ENTRY_OVERHEAD_BYTES + (stored.nbytes if stored is not None else 0)
        if nbytes > self._shard_budget:
            return  # an entry larger than a whole shard can never fit
        shard = self._shard_for(key)
        victims: list[tuple[bytes, _Entry]] = []
        with shard.lock:
            old = shard.entries.pop(key, None)
            if old is not None:
                shard.bytes -= old.nbytes
            shard.entries[key] = _Entry(answer, stored, fingerprint, nbytes)
            shard.bytes += nbytes
            while shard.bytes > self._shard_budget and shard.entries:
                victim_key, victim = shard.entries.popitem(last=False)
                shard.bytes -= victim.nbytes
                victims.append((victim_key, victim))
        evicted = len(victims)
        if fingerprint is not None or victims:
            with self._fp_lock:
                for victim_key, victim in victims:
                    if (
                        victim.fingerprint is not None
                        and self._fp_index.get(victim.fingerprint) == victim_key
                    ):
                        del self._fp_index[victim.fingerprint]
                if fingerprint is not None:
                    self._fp_index[fingerprint] = key
        with self._counter_lock:
            self._insertions += 1
            self._evictions += evicted
        if evicted:
            obs.count("cache.evicted", evicted)

    # -- reading --------------------------------------------------------------
    @property
    def bytes(self) -> int:
        return sum(shard.bytes for shard in self._shards)

    @property
    def entries(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def snapshot(self) -> CacheSnapshot:
        with self._counter_lock:
            lookups, hits, misses = self._lookups, self._hits, self._misses
            near_hits, near_rejects = self._near_hits, self._near_rejects
            insertions, evictions = self._insertions, self._evictions
        return CacheSnapshot(
            lookups=lookups,
            hits=hits,
            misses=misses,
            near_hits=near_hits,
            near_rejects=near_rejects,
            insertions=insertions,
            evictions=evictions,
            entries=self.entries,
            bytes=self.bytes,
            max_bytes=self.max_bytes,
        )

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
                shard.bytes = 0
        with self._fp_lock:
            self._fp_index.clear()
