"""Content-addressed result cache for the cascade serving layer.

Video workloads (:mod:`repro.stream` / :class:`repro.traffic.VideoTrafficSource`)
re-submit near-identical ROI crops frame after frame, so a large
fraction of cascade work is recomputation of answers the server already
produced.  This package short-circuits that work *in front of*
``submit()``:

* :class:`ResultCache` — sharded-lock, byte-bounded LRU mapping a
  blake2b content key (:func:`repro.util.hashing.content_key`) to the
  terminal answer of a previous cascade pass, with an optional
  near-duplicate tier (quantized-thumbnail fingerprint + an exact
  ``atol=0`` compare gate by default, so hits stay bit-identical to a
  cold run).
* :class:`CachingFrontend` — wraps any ``submit() -> Future`` backend
  (an in-process :class:`repro.serve.CascadeServer`, one tenant of a
  :class:`repro.serve.MultiTenantServer`, or a ``repro.net`` replica)
  with cache lookup plus **single-flight** deduplication: N concurrent
  submits of the same image trigger exactly one cascade pass.

See ``docs/TENANCY.md`` for the design and the measured video-replay
hit rates (``benchmarks/results/BENCH_cache.json``).
"""

from .front import CachingFrontend, SingleFlightSnapshot
from .result_cache import CachedAnswer, CacheSnapshot, ResultCache

__all__ = [
    "CachedAnswer",
    "CacheSnapshot",
    "CachingFrontend",
    "ResultCache",
    "SingleFlightSnapshot",
]
