"""Synthetic video stream with moving, labelled objects.

The paper motivates releasing FPGA BRAM so that "hardware that could
extract regions of interest in a large HD frame and then scale to 32x32
sub-frames" can sit next to the classifier.  This module provides that
workload: frames with several CIFAR-class objects drifting over a smooth
background, with ground-truth boxes and labels for end-to-end evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.synthetic import SyntheticConfig, render_class_image

__all__ = ["ObjectTrack", "Frame", "SyntheticVideo"]


@dataclass
class ObjectTrack:
    """One object moving through the scene."""

    label: int
    size: int                 # rendered sprite side, in pixels
    position: np.ndarray      # (y, x) of the sprite's top-left corner
    velocity: np.ndarray      # pixels/frame
    sprite: np.ndarray        # (3, size, size) rendered object patch

    def step(self, frame_height: int, frame_width: int) -> None:
        """Advance one frame, bouncing off the borders."""
        self.position += self.velocity
        for axis, limit in ((0, frame_height - self.size), (1, frame_width - self.size)):
            if self.position[axis] < 0:
                self.position[axis] = -self.position[axis]
                self.velocity[axis] = -self.velocity[axis]
            elif self.position[axis] > limit:
                self.position[axis] = 2 * limit - self.position[axis]
                self.velocity[axis] = -self.velocity[axis]
        np.clip(self.position, [0, 0], [frame_height - self.size, frame_width - self.size],
                out=self.position)

    @property
    def box(self) -> tuple[int, int, int, int]:
        """(y0, x0, y1, x1) bounding box, end-exclusive."""
        y0, x0 = (int(round(v)) for v in self.position)
        return (y0, x0, y0 + self.size, x0 + self.size)


@dataclass
class Frame:
    """One video frame with ground truth."""

    index: int
    pixels: np.ndarray                       # (3, H, W) in [0, 1]
    boxes: list[tuple[int, int, int, int]]   # ground-truth boxes
    labels: list[int] = field(default_factory=list)


class SyntheticVideo:
    """Generator of frames with ``num_objects`` drifting class sprites.

    Parameters
    ----------
    height, width:
        Frame geometry (defaults are a quarter-HD frame to keep numpy
        throughput reasonable; the structure is resolution-independent).
    num_objects:
        Simultaneous objects per frame.
    object_size:
        Rendered sprite side in pixels (scaled down to 32x32 by the ROI
        stage, as the paper describes).
    noise:
        Background pixel noise level.
    """

    def __init__(
        self,
        height: int = 270,
        width: int = 480,
        num_objects: int = 3,
        object_size: int = 48,
        noise: float = 0.02,
        seed: int = 0,
    ):
        if height < object_size or width < object_size:
            raise ValueError("frame must be larger than the objects")
        if num_objects < 1:
            raise ValueError("need at least one object")
        self.height = height
        self.width = width
        self.num_objects = num_objects
        self.object_size = object_size
        self.noise = noise
        self.rng = np.random.default_rng(seed)
        # Sprites use the same rendering distribution the classifiers are
        # trained on (defaults), minus occluders — keeping the stream's
        # objects in-distribution for the cascade.
        self._sprite_config = SyntheticConfig(image_size=object_size, occluder_prob=0.0)
        self.tracks = [self._spawn() for _ in range(num_objects)]
        self._background = self._make_background()
        self._index = 0

    def _make_background(self) -> np.ndarray:
        top = self.rng.uniform(0.4, 0.7, size=3)
        bottom = self.rng.uniform(0.3, 0.6, size=3)
        ramp = np.linspace(0, 1, self.height).reshape(1, self.height, 1)
        bg = top[:, None, None] * (1 - ramp) + bottom[:, None, None] * ramp
        return np.broadcast_to(bg, (3, self.height, self.width)).copy()

    def _spawn(self) -> ObjectTrack:
        label = int(self.rng.integers(0, 10))
        sprite = render_class_image(label, self.rng, self._sprite_config)
        position = np.array(
            [
                self.rng.uniform(0, self.height - self.object_size),
                self.rng.uniform(0, self.width - self.object_size),
            ]
        )
        speed = self.rng.uniform(1.0, 4.0, size=2) * self.rng.choice([-1, 1], size=2)
        return ObjectTrack(label, self.object_size, position, speed, sprite)

    def next_frame(self) -> Frame:
        """Render the next frame and advance every track."""
        pixels = self._background.copy()
        boxes, labels = [], []
        for track in self.tracks:
            y0, x0, y1, x1 = track.box
            pixels[:, y0:y1, x0:x1] = track.sprite
            boxes.append((y0, x0, y1, x1))
            labels.append(track.label)
            track.step(self.height, self.width)
        if self.noise:
            pixels = np.clip(
                pixels + self.noise * self.rng.standard_normal(pixels.shape), 0.0, 1.0
            )
        frame = Frame(index=self._index, pixels=pixels, boxes=boxes, labels=labels)
        self._index += 1
        return frame

    def frames(self, count: int):
        """Yield ``count`` consecutive frames."""
        if count <= 0:
            raise ValueError("count must be positive")
        for _ in range(count):
            yield self.next_frame()
