"""End-to-end video cascade: frames -> ROIs -> 32x32 crops -> classifier.

Wires the synthetic video source and the ROI front-end to any classifier
with the multi-precision pipeline's interface, and scores detection
recall and classification accuracy against the stream's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pipeline import MultiPrecisionPipeline
from ..data.dataset import normalize_to_pm1
from .roi import RoiConfig, box_iou, detect_rois, extract_patches
from .video import Frame, SyntheticVideo

__all__ = ["FrameResult", "StreamReport", "VideoCascade"]


@dataclass
class FrameResult:
    """Detections and classifications for one frame."""

    frame_index: int
    boxes: list[tuple[int, int, int, int]]
    predictions: np.ndarray
    rerun_mask: np.ndarray

    @property
    def num_detections(self) -> int:
        return len(self.boxes)


@dataclass
class StreamReport:
    """Aggregate metrics over a processed stream."""

    frames: list[FrameResult] = field(default_factory=list)
    matched_objects: int = 0
    total_objects: int = 0
    correct_classifications: int = 0
    total_reruns: int = 0
    total_patches: int = 0

    @property
    def detection_recall(self) -> float:
        """Fraction of ground-truth objects matched by some ROI."""
        return self.matched_objects / self.total_objects if self.total_objects else 0.0

    @property
    def classification_accuracy(self) -> float:
        """Accuracy over matched objects."""
        return (
            self.correct_classifications / self.matched_objects
            if self.matched_objects
            else 0.0
        )

    @property
    def rerun_ratio(self) -> float:
        return self.total_reruns / self.total_patches if self.total_patches else 0.0


class VideoCascade:
    """Run the multi-precision cascade over a video stream.

    Parameters
    ----------
    pipeline:
        A :class:`~repro.core.pipeline.MultiPrecisionPipeline` (or any
        object with its ``classify`` interface).
    roi_config:
        Front-end detector tuning.
    iou_threshold:
        Minimum IoU for a detection to count as matching a ground-truth
        object.
    """

    def __init__(
        self,
        pipeline: MultiPrecisionPipeline,
        roi_config: RoiConfig | None = None,
        iou_threshold: float = 0.3,
        patch_size: int = 32,
    ):
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in (0, 1]")
        self.pipeline = pipeline
        self.roi_config = roi_config or RoiConfig()
        self.iou_threshold = iou_threshold
        self.patch_size = patch_size

    def process_frame(self, frame: Frame) -> FrameResult:
        boxes = detect_rois(frame.pixels, self.roi_config)
        patches = extract_patches(frame.pixels, boxes, self.patch_size)
        if patches.shape[0]:
            result = self.pipeline.classify(
                patches, bnn_images=normalize_to_pm1(patches)
            )
            predictions = result.predictions
            rerun_mask = result.rerun_mask
        else:
            predictions = np.empty(0, dtype=np.int64)
            rerun_mask = np.empty(0, dtype=bool)
        return FrameResult(
            frame_index=frame.index,
            boxes=boxes,
            predictions=predictions,
            rerun_mask=rerun_mask,
        )

    def run(self, video: SyntheticVideo, num_frames: int) -> StreamReport:
        """Process ``num_frames`` and score against ground truth."""
        report = StreamReport()
        for frame in video.frames(num_frames):
            result = self.process_frame(frame)
            report.frames.append(result)
            report.total_patches += result.num_detections
            report.total_reruns += int(result.rerun_mask.sum())
            report.total_objects += len(frame.boxes)

            for truth_box, truth_label in zip(frame.boxes, frame.labels):
                best_iou, best_idx = 0.0, None
                for i, box in enumerate(result.boxes):
                    iou = box_iou(truth_box, box)
                    if iou > best_iou:
                        best_iou, best_idx = iou, i
                if best_idx is not None and best_iou >= self.iou_threshold:
                    report.matched_objects += 1
                    if int(result.predictions[best_idx]) == truth_label:
                        report.correct_classifications += 1
        return report
