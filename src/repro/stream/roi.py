"""Region-of-interest extraction from video frames.

A lightweight saliency detector: pixels deviating from a local background
estimate are marked foreground, connected components become candidate
boxes, and each box is resampled to the classifier's 32x32 input — the
"extract regions of interest in a large HD frame and then scale to 32x32
sub-frames" front-end the paper wants to co-locate with the classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["RoiConfig", "detect_rois", "resize_bilinear", "extract_patches", "box_iou"]


@dataclass(frozen=True)
class RoiConfig:
    """Detector tuning knobs."""

    blur_size: int = 31          # background-estimate box filter side
    threshold: float = 0.08      # foreground saliency threshold
    min_area: int = 64           # drop components smaller than this
    max_boxes: int = 16          # keep the largest N components
    pad: int = 2                 # grow each box by this margin

    def __post_init__(self):
        if self.blur_size < 3 or self.blur_size % 2 == 0:
            raise ValueError("blur_size must be an odd integer >= 3")
        if self.threshold <= 0 or self.min_area <= 0 or self.max_boxes <= 0:
            raise ValueError("threshold, min_area and max_boxes must be positive")
        if self.pad < 0:
            raise ValueError("pad must be non-negative")


def detect_rois(frame: np.ndarray, config: RoiConfig | None = None) -> list[tuple[int, int, int, int]]:
    """Find salient boxes (y0, x0, y1, x1; end-exclusive) in one frame."""
    cfg = config or RoiConfig()
    if frame.ndim != 3 or frame.shape[0] != 3:
        raise ValueError("frame must be (3, H, W)")
    _, h, w = frame.shape

    intensity = frame.mean(axis=0)
    background = ndimage.uniform_filter(intensity, size=cfg.blur_size, mode="nearest")
    saliency = np.abs(intensity - background)
    mask = saliency > cfg.threshold
    mask = ndimage.binary_closing(mask, structure=np.ones((3, 3)))

    labelled, count = ndimage.label(mask)
    boxes = []
    for slice_pair in ndimage.find_objects(labelled):
        if slice_pair is None:
            continue
        ys, xs = slice_pair
        area = (ys.stop - ys.start) * (xs.stop - xs.start)
        if area < cfg.min_area:
            continue
        boxes.append(
            (
                max(0, ys.start - cfg.pad),
                max(0, xs.start - cfg.pad),
                min(h, ys.stop + cfg.pad),
                min(w, xs.stop + cfg.pad),
                area,
            )
        )
    boxes.sort(key=lambda b: -b[4])
    return [b[:4] for b in boxes[: cfg.max_boxes]]


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resample of a (C, H, W) image."""
    if image.ndim != 3:
        raise ValueError("image must be (C, H, W)")
    if out_h <= 0 or out_w <= 0:
        raise ValueError("output size must be positive")
    c, h, w = image.shape
    ys = (np.arange(out_h) + 0.5) * h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * w / out_w - 0.5
    y0 = np.clip(np.floor(ys).astype(int), 0, h - 1)
    x0 = np.clip(np.floor(xs).astype(int), 0, w - 1)
    y1 = np.clip(y0 + 1, 0, h - 1)
    x1 = np.clip(x0 + 1, 0, w - 1)
    wy = np.clip(ys - y0, 0.0, 1.0).reshape(1, out_h, 1)
    wx = np.clip(xs - x0, 0.0, 1.0).reshape(1, 1, out_w)

    top = image[:, y0][:, :, x0] * (1 - wx) + image[:, y0][:, :, x1] * wx
    bottom = image[:, y1][:, :, x0] * (1 - wx) + image[:, y1][:, :, x1] * wx
    return top * (1 - wy) + bottom * wy


def extract_patches(
    frame: np.ndarray,
    boxes: list[tuple[int, int, int, int]],
    out_size: int = 32,
) -> np.ndarray:
    """Crop each box and resample to (len(boxes), 3, out_size, out_size)."""
    if not boxes:
        return np.empty((0, frame.shape[0], out_size, out_size))
    patches = []
    for y0, x0, y1, x1 in boxes:
        if y1 <= y0 or x1 <= x0:
            raise ValueError(f"degenerate box {(y0, x0, y1, x1)}")
        crop = frame[:, y0:y1, x0:x1]
        patches.append(resize_bilinear(crop, out_size, out_size))
    return np.stack(patches)


def box_iou(a: tuple[int, int, int, int], b: tuple[int, int, int, int]) -> float:
    """Intersection-over-union of two (y0, x0, y1, x1) boxes."""
    y0 = max(a[0], b[0])
    x0 = max(a[1], b[1])
    y1 = min(a[2], b[2])
    x1 = min(a[3], b[3])
    inter = max(0, y1 - y0) * max(0, x1 - x0)
    area_a = (a[2] - a[0]) * (a[3] - a[1])
    area_b = (b[2] - b[0]) * (b[3] - b[1])
    union = area_a + area_b - inter
    return inter / union if union else 0.0
