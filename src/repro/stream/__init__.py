"""Video-stream substrate: the HD-frame ROI workload the paper motivates.

Section III-A: "image classification designs are typically part of a
bigger design in practice (e.g. used in live video streams) ... hardware
that could extract regions of interest in a large HD frame and then scale
to 32x32 sub-frames for use in CIFAR-10 network".  This package supplies
that surrounding system: a synthetic video source with moving labelled
objects, a saliency ROI detector with bilinear rescaling to 32x32, and an
end-to-end cascade runner with detection/classification metrics.
"""

from .pipeline import FrameResult, StreamReport, VideoCascade
from .roi import RoiConfig, box_iou, detect_rois, extract_patches, resize_bilinear
from .video import Frame, ObjectTrack, SyntheticVideo

__all__ = [
    "SyntheticVideo",
    "Frame",
    "ObjectTrack",
    "RoiConfig",
    "detect_rois",
    "extract_patches",
    "resize_bilinear",
    "box_iou",
    "VideoCascade",
    "FrameResult",
    "StreamReport",
]
