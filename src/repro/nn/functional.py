"""Stateless tensor operations shared by layers.

All image tensors are NCHW (batch, channels, height, width).  Convolution
is implemented by im2col + matrix multiplication, which is both the fastest
pure-numpy route and exactly the lowering FINN uses in hardware (the paper
cites Chellapilla et al. [7] for unrolling convolutions into matrix-matrix
products), so the same code path later feeds the binarized engine model.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv_output_size",
    "pool_output_size",
    "pad_nchw",
    "im2col",
    "im2col_packed",
    "col2im",
    "softmax",
    "log_softmax",
    "one_hot",
    "sigmoid",
]


def conv_output_size(size: int, kernel: int, stride: int = 1, pad: int = 0) -> int:
    """Spatial output size of a convolution along one dimension.

    Raises
    ------
    ValueError
        If the kernel (plus padding) does not fit in the input.
    """
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"kernel {kernel} (stride {stride}, pad {pad}) does not fit input of size {size}"
        )
    return out


def pool_output_size(size: int, window: int, stride: int | None = None, pad: int = 0) -> int:
    """Spatial output size of a pooling window along one dimension."""
    return conv_output_size(size, window, stride if stride is not None else window, pad)


def pad_nchw(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an NCHW tensor."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unroll sliding windows of ``x`` into a 2-D matrix.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel_h, kernel_w:
        Window size.
    stride, pad:
        Convolution stride and symmetric zero padding.

    Returns
    -------
    numpy.ndarray
        Shape ``(N * OH * OW, C * kernel_h * kernel_w)``.  Row ``i`` holds
        the receptive field of output pixel ``i`` in (C, kh, kw) order —
        the same ordering FINN's SIMD lanes consume.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel_h, stride, pad)
    ow = conv_output_size(w, kernel_w, stride, pad)
    xp = pad_nchw(x, pad)

    sn, sc, sh, sw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, oh, ow, kernel_h, kernel_w),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) -> rows indexed by output pixel.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols)


def im2col_packed(
    words: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1
) -> np.ndarray:
    """Bit-plane-aware im2col over channel-packed ±1 maps.

    Parameters
    ----------
    words:
        Packed input of shape ``(N, H, W, B)`` uint8 — each pixel's
        channel bits as ``B`` bytes (see :class:`repro.bnn.PackedMaps`).
    kernel_h, kernel_w, stride:
        Window geometry.  No padding: zero bits encode -1, so spatial
        zero padding has no ±1 representation (binarized inner layers
        are unpadded, as in the FINN CNV topology).

    Returns
    -------
    numpy.ndarray
        Shape ``(N * OH * OW, kernel_h * kernel_w * B)`` uint8.  Row ``i``
        concatenates the packed pixel byte-groups of output pixel ``i``'s
        receptive field in (kh, kw, c) order — a pure byte gather, never
        touching individual bits.
    """
    if words.ndim != 4 or words.dtype != np.uint8:
        raise ValueError("im2col_packed expects (N, H, W, B) uint8 input")
    n, h, w, b = words.shape
    oh = conv_output_size(h, kernel_h, stride, 0)
    ow = conv_output_size(w, kernel_w, stride, 0)
    sn, sh, sw, sb = words.strides
    windows = np.lib.stride_tricks.as_strided(
        words,
        shape=(n, oh, ow, kernel_h, kernel_w, b),
        strides=(sn, sh * stride, sw * stride, sh, sw, sb),
        writeable=False,
    )
    return np.ascontiguousarray(windows.reshape(n * oh * ow, kernel_h * kernel_w * b))


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col` for the backward pass.

    Overlapping contributions are summed, which is exactly the gradient of
    the unrolling operation.
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kernel_h, stride, pad)
    ow = conv_output_size(w, kernel_w, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad

    cols6 = cols.reshape(n, oh, ow, c, kernel_h, kernel_w).transpose(0, 3, 1, 2, 4, 5)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for kh in range(kernel_h):
        h_end = kh + stride * oh
        for kw in range(kernel_w):
            w_end = kw + stride * ow
            out[:, :, kh:h_end:stride, kw:w_end:stride] += cols6[:, :, :, :, kh, kw]
    if pad:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer labels as one-hot rows."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(f"labels out of range for {num_classes} classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
