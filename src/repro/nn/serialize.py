"""Save/load Sequential model weights as ``.npz`` archives.

The archive stores every parameter (trainable and frozen, so BatchNorm
running statistics survive) keyed by layer position and parameter name.
Loading requires a structurally identical model — the same builder with
the same arguments — and fails loudly otherwise.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .network import Sequential

__all__ = ["save_model", "load_model"]


def save_model(net: Sequential, path: str | Path, metadata: dict[str, float] | None = None) -> None:
    """Write all parameters (and optional scalar metadata) to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    for key, value in net.state_dict().items():
        arrays[f"param:{key}"] = value
    for key, value in (metadata or {}).items():
        arrays[f"meta:{key}"] = np.asarray(float(value))
    np.savez_compressed(Path(path), **arrays)


def load_model(net: Sequential, path: str | Path) -> dict[str, float]:
    """Load parameters into ``net``; returns the stored metadata.

    Raises
    ------
    KeyError / ValueError
        If the archive does not match the model's structure or shapes.
    """
    data = dict(np.load(Path(path), allow_pickle=False))
    state = {}
    metadata: dict[str, float] = {}
    for key, value in data.items():
        if key.startswith("param:"):
            state[key[len("param:"):]] = value
        elif key.startswith("meta:"):
            metadata[key[len("meta:"):]] = float(value)
    net.load_state_dict(state)
    return metadata
