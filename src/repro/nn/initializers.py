"""Weight initialization schemes.

Every initializer takes an explicit :class:`numpy.random.Generator` so that
all experiments in the repository are reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "constant",
    "uniform",
    "normal",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "fan_in_and_fan_out",
]


def fan_in_and_fan_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor shape.

    Dense weights are ``(in, out)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"cannot infer fans for shape {shape}")


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def constant(value: float):
    """Return an initializer filling with ``value``."""

    def _init(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full(shape, float(value), dtype=np.float64)

    return _init


def uniform(scale: float = 0.05):
    """Uniform in ``[-scale, scale]``."""

    def _init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(-scale, scale, size=shape)

    return _init


def normal(stddev: float = 0.05):
    """Gaussian with the given standard deviation."""

    def _init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, stddev, size=shape)

    return _init


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization (good for tanh/linear)."""
    fan_in, fan_out = fan_in_and_fan_out(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = fan_in_and_fan_out(shape)
    stddev = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, stddev, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization (good for ReLU networks)."""
    fan_in, _ = fan_in_and_fan_out(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = fan_in_and_fan_out(shape)
    stddev = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, stddev, size=shape)
