"""Minibatch training loop with evaluation and history tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .losses import Loss
from .network import Sequential
from .optim import Optimizer

__all__ = ["TrainHistory", "Trainer", "accuracy"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of logits against integer labels."""
    if logits.shape[0] == 0:
        return 0.0
    return float((logits.argmax(axis=1) == np.asarray(labels)).mean())


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class Trainer:
    """Drives SGD over a :class:`~repro.nn.network.Sequential` model.

    Parameters
    ----------
    model, loss, optimizer:
        The usual triple.
    rng:
        Generator used to shuffle each epoch (reproducible).
    lr_schedule:
        Optional ``epoch -> lr`` callable evaluated at the start of every
        epoch (step decay is enough for these small runs).
    keep_best:
        When validation data is supplied, restore the best-validation
        snapshot at the end of :meth:`fit`.
    augment:
        Optional per-batch input transform (e.g. a
        :class:`repro.data.Augmenter`) applied in training steps only.
    grad_clip:
        Optional global-norm gradient clipping threshold.
    patience:
        Early stopping: abort :meth:`fit` after this many epochs without
        a new best validation accuracy (``None`` disables; requires
        validation data to take effect).
    """

    def __init__(
        self,
        model: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        rng: np.random.Generator | None = None,
        lr_schedule: Callable[[int], float] | None = None,
        keep_best: bool = True,
        augment: Callable[[np.ndarray], np.ndarray] | None = None,
        grad_clip: float | None = None,
        patience: int | None = None,
    ):
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError("grad_clip must be positive")
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.rng = rng or np.random.default_rng(0)
        self.lr_schedule = lr_schedule
        self.keep_best = keep_best
        self.augment = augment
        self.grad_clip = grad_clip
        self.patience = patience

    def _clip_gradients(self) -> None:
        total_sq = sum(float((p.grad**2).sum()) for p in self.optimizer.params)
        norm = total_sq**0.5
        if norm > self.grad_clip:
            scale = self.grad_clip / norm
            for p in self.optimizer.params:
                p.grad *= scale

    def train_step(self, xb: np.ndarray, yb: np.ndarray) -> tuple[float, float]:
        """One optimizer step; returns (loss, batch accuracy)."""
        self.model.train_mode()
        self.optimizer.zero_grad()
        if self.augment is not None:
            xb = self.augment(xb)
        logits = self.model.forward(xb)
        loss_value = self.loss.forward(logits, yb)
        self.model.backward(self.loss.backward())
        if self.grad_clip is not None:
            self._clip_gradients()
        self.optimizer.step()
        return loss_value, accuracy(logits, yb)

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        logits = self.model.predict(x, batch_size=batch_size)
        return accuracy(logits, y)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        batch_size: int = 64,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        if x.shape[0] != np.asarray(y).shape[0]:
            raise ValueError("x and y must have the same number of samples")
        history = TrainHistory()
        n = x.shape[0]
        best_acc = -1.0
        best_state = None
        epochs_since_best = 0

        for epoch in range(epochs):
            if self.lr_schedule is not None:
                self.optimizer.lr = self.lr_schedule(epoch)
            order = self.rng.permutation(n)
            losses, accs = [], []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                loss_value, acc = self.train_step(x[idx], np.asarray(y)[idx])
                losses.append(loss_value)
                accs.append(acc)
            history.train_loss.append(float(np.mean(losses)))
            history.train_accuracy.append(float(np.mean(accs)))

            if x_val is not None and y_val is not None:
                val_acc = self.evaluate(x_val, y_val)
                history.val_accuracy.append(val_acc)
                if val_acc > best_acc:
                    best_acc = val_acc
                    epochs_since_best = 0
                    if self.keep_best:
                        best_state = self.model.state_dict()
                else:
                    epochs_since_best += 1
                if self.patience is not None and epochs_since_best >= self.patience:
                    break
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {epoch + 1}/{epochs}: loss={history.train_loss[-1]:.4f} "
                    f"acc={history.train_accuracy[-1]:.3f}"
                )
                if history.val_accuracy:
                    msg += f" val_acc={history.val_accuracy[-1]:.3f}"
                print(msg)

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history
