"""Layer zoo for the :mod:`repro.nn` framework."""

from .activations import HardTanh, ReLU, Sigmoid, Tanh
from .base import Layer
from .batchnorm import BatchNorm
from .conv import Conv2D
from .dense import Dense
from .dropout import Dropout
from .flatten import Flatten
from .lrn import LocalResponseNorm
from .pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "HardTanh",
    "BatchNorm",
    "LocalResponseNorm",
    "Dropout",
    "Flatten",
]
