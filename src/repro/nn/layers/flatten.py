"""Flatten NCHW feature maps into (N, features) rows."""

from __future__ import annotations

import math

import numpy as np

from .base import Layer

__all__ = ["Flatten"]


class Flatten(Layer):
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(math.prod(input_shape)),)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)
