"""Abstract layer interface.

A :class:`Layer` is a node in a feed-forward network: it caches whatever it
needs during ``forward`` and consumes that cache in ``backward``.  Layers
are single-use per step — calling ``backward`` without a preceding
``forward`` is an error and raises.
"""

from __future__ import annotations

import numpy as np

from ..parameter import Parameter

__all__ = ["Layer"]


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`, register
    parameters by appending to ``self._params``, and may override
    :meth:`output_shape` to support static shape inference (used by the
    hardware models, which need shapes without running data through).
    """

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__
        self.training = False
        self._params: list[Parameter] = []

    # -- parameters -------------------------------------------------------
    def params(self) -> list[Parameter]:
        """All parameters of this layer (trainable and frozen)."""
        return list(self._params)

    def num_params(self) -> int:
        return sum(p.size for p in self._params)

    # -- execution --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- shape inference ---------------------------------------------------
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape (excluding batch dim) this layer produces for ``input_shape``.

        The default assumes a shape-preserving layer.
        """
        return tuple(input_shape)

    # -- mode switches ------------------------------------------------------
    def train_mode(self) -> None:
        self.training = True

    def eval_mode(self) -> None:
        self.training = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
