"""Pooling layers: max, average and global average (NCHW)."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .base import Layer

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class _Pool2D(Layer):
    """Shared window bookkeeping for max/average pooling."""

    def __init__(self, window: int, stride: int | None = None, pad: int = 0, name: str | None = None):
        super().__init__(name)
        if window <= 0:
            raise ValueError("pooling window must be positive")
        self.window = window
        self.stride = stride if stride is not None else window
        self.pad = pad
        if self.stride <= 0 or self.pad < 0:
            raise ValueError("stride must be positive and pad non-negative")

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        oh = F.pool_output_size(h, self.window, self.stride, self.pad)
        ow = F.pool_output_size(w, self.window, self.stride, self.pad)
        return (c, oh, ow)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """View of shape (N, C, OH, OW, window, window)."""
        n, c, h, w = x.shape
        xp = F.pad_nchw(x, self.pad)
        oh = F.pool_output_size(h, self.window, self.stride, self.pad)
        ow = F.pool_output_size(w, self.window, self.stride, self.pad)
        sn, sc, sh, sw = xp.strides
        return np.lib.stride_tricks.as_strided(
            xp,
            shape=(n, c, oh, ow, self.window, self.window),
            strides=(sn, sc, sh * self.stride, sw * self.stride, sh, sw),
            writeable=False,
        )


class MaxPool2D(_Pool2D):
    """Max pooling, as used by FINN CNV (2x2) and Model A (3x3 stride 2)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        windows = self._windows(x)
        n, c, oh, ow = windows.shape[:4]
        flat = windows.reshape(n, c, oh, ow, -1)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, argmax)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, argmax = self._cache
        self._cache = None
        n, c, h, w = x_shape
        oh, ow = grad.shape[2:]
        hp, wp = h + 2 * self.pad, w + 2 * self.pad
        dxp = np.zeros((n, c, hp, wp), dtype=grad.dtype)

        kh, kw = np.unravel_index(argmax, (self.window, self.window))
        oy = np.arange(oh)[None, None, :, None]
        ox = np.arange(ow)[None, None, None, :]
        rows = oy * self.stride + kh
        cols = ox * self.stride + kw
        bidx = np.arange(n)[:, None, None, None]
        cidx = np.arange(c)[None, :, None, None]
        np.add.at(dxp, (bidx, cidx, rows, cols), grad)
        if self.pad:
            dxp = dxp[:, :, self.pad : -self.pad, self.pad : -self.pad]
        return dxp


class AvgPool2D(_Pool2D):
    """Average pooling (cuda-convnet's later pools; NiN pools)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        windows = self._windows(x)
        self._x_shape = x.shape
        return windows.mean(axis=(-1, -2))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        oh, ow = grad.shape[2:]
        hp, wp = h + 2 * self.pad, w + 2 * self.pad
        dxp = np.zeros((n, c, hp, wp), dtype=grad.dtype)
        share = grad / (self.window * self.window)
        for kh in range(self.window):
            for kw in range(self.window):
                dxp[:, :, kh : kh + self.stride * oh : self.stride,
                    kw : kw + self.stride * ow : self.stride] += share
        if self.pad:
            dxp = dxp[:, :, self.pad : -self.pad, self.pad : -self.pad]
        return dxp


class GlobalAvgPool2D(Layer):
    """Global average pooling over H and W, producing (N, C).

    The NiN (Model B) and All-CNN (Model C) topologies end in global
    pooling over the 10 class feature maps instead of a dense classifier.
    """

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, _, _ = input_shape
        return (c,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        return np.broadcast_to(grad[:, :, None, None], (n, c, h, w)) / (h * w)
