"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: active only in training mode, identity in eval.

    Models B and C (NiN / All-CNN) use dropout between their conv blocks.
    The mask RNG is owned by the layer so runs are reproducible.
    """

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None, name: str | None = None):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
