"""Local response normalization (across channels).

Model A — the cuda-convnet CIFAR-10 network — interleaves LRN with its
pooling stages (Table III of the paper).  This is AlexNet-style
across-channel LRN:

    y_c = x_c / (k + alpha/n * sum_{c' in window} x_{c'}^2) ** beta
"""

from __future__ import annotations

import numpy as np

from .base import Layer

__all__ = ["LocalResponseNorm"]


class LocalResponseNorm(Layer):
    def __init__(
        self,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
        name: str | None = None,
    ):
        super().__init__(name)
        if size <= 0 or size % 2 == 0:
            raise ValueError("LRN window size must be a positive odd integer")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def _channel_sums(self, sq: np.ndarray) -> np.ndarray:
        """Sliding-window sum of x^2 across the channel axis."""
        n, c, h, w = sq.shape
        half = self.size // 2
        padded = np.zeros((n, c + 2 * half, h, w), dtype=sq.dtype)
        padded[:, half : half + c] = sq
        csum = np.cumsum(padded, axis=1)
        zero = np.zeros((n, 1, h, w), dtype=sq.dtype)
        csum = np.concatenate([zero, csum], axis=1)
        return csum[:, self.size :] - csum[:, :-self.size]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("LRN expects NCHW input")
        sq = x * x
        sums = self._channel_sums(sq)
        scale = self.k + (self.alpha / self.size) * sums
        out = x * scale ** (-self.beta)
        self._cache = (x, scale, out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, scale, y = self._cache
        self._cache = None
        # dy_c/dx_c direct term plus the cross-channel term through `scale`.
        direct = grad * scale ** (-self.beta)
        # g_c = grad_c * y_c / scale_c summed over the window that includes c.
        g = grad * y / scale
        cross_sums = self._channel_sums(g)
        cross = -2.0 * self.beta * (self.alpha / self.size) * x * cross_sums
        return direct + cross
