"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .base import Layer

__all__ = ["ReLU", "Sigmoid", "Tanh", "HardTanh"]


class ReLU(Layer):
    """Rectified linear unit (all three host models use ReLU)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class Sigmoid(Layer):
    """Logistic sigmoid — the DMU's 'positive transfer function'."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = F.sigmoid(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._y * (1.0 - self._y)


class Tanh(Layer):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._y**2)


class HardTanh(Layer):
    """Clip to [-1, 1]; the straight-through surrogate used around sign().

    BinaryNet trains ``sign`` activations with the hard-tanh gradient
    (pass-through inside [-1, 1], zero outside).
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = np.abs(x) <= 1.0
        return np.clip(x, -1.0, 1.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask
