"""2-D convolution layer (im2col + GEMM, NCHW)."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import initializers
from ..parameter import Parameter
from .base import Layer

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """Standard 2-D convolution.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.  Weight shape is ``(out, in, kh, kw)``.
    kernel_size:
        Square kernel side (the paper's networks use 1x1, 3x3 and 5x5).
    stride, pad:
        Stride and symmetric zero padding.  The FINN CNV network applies
        no padding (Table I); the host models pad to preserve size.
    use_bias:
        The binarized variants fold bias into thresholds, so bias is
        optional.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        use_bias: bool = True,
        weight_init=initializers.he_normal,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("channel counts and kernel size must be positive")
        if stride <= 0 or pad < 0:
            raise ValueError("stride must be positive and pad non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.use_bias = use_bias

        rng = rng or np.random.default_rng(0)
        wshape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(weight_init(wshape, rng), name=f"{self.name}.weight")
        self._params = [self.weight]
        if use_bias:
            self.bias = Parameter(np.zeros(out_channels), name=f"{self.name}.bias")
            self._params.append(self.bias)
        else:
            self.bias = None

        self._cache: tuple | None = None

    # -- shape --------------------------------------------------------------
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} input channels, got {c}"
            )
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.pad)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.pad)
        return (self.out_channels, oh, ow)

    # -- execution ------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        _, oh, ow = self.output_shape(x.shape[1:])
        k = self.kernel_size
        cols = F.im2col(x, k, k, self.stride, self.pad)
        wmat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ wmat.T
        if self.bias is not None:
            out += self.bias.value
        # The im2col matrix is only needed for backward; holding it during
        # eval-mode inference keeps multi-MB activations alive per layer.
        self._cache = (x.shape, cols) if self.training else None
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x_shape, cols = self._cache
        self._cache = None
        k = self.kernel_size
        n, od, oh, ow = grad.shape
        gmat = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, od)

        self.weight.grad += (gmat.T @ cols).reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += gmat.sum(axis=0)

        wmat = self.weight.value.reshape(self.out_channels, -1)
        gcols = gmat @ wmat
        return F.col2im(gcols, x_shape, k, k, self.stride, self.pad)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.pad})"
        )
