"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from .. import initializers
from ..parameter import Parameter
from .base import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine layer ``y = x W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        weight_init=initializers.he_normal,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias

        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            weight_init((in_features, out_features), rng), name=f"{self.name}.weight"
        )
        self._params = [self.weight]
        if use_bias:
            self.bias = Parameter(np.zeros(out_features), name=f"{self.name}.bias")
            self._params.append(self.bias)
        else:
            self.bias = None
        self._x: np.ndarray | None = None

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ValueError(
                f"{self.name}: expected flat input of {self.in_features}, got {input_shape}"
            )
        return (self.out_features,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"{self.name}: dense input must be 2-D, got {x.shape}")
        self._x = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward called before forward")
        x, self._x = self._x, None
        self.weight.grad += x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}->{self.out_features})"
