"""Batch normalization.

BatchNorm is the companion of binarized layers: FINN folds each BatchNorm +
sign() pair into a single integer threshold at deployment time
(:mod:`repro.bnn.thresholding`), so this implementation exposes its learned
``gamma``/``beta`` and running statistics for that folding.
"""

from __future__ import annotations

import numpy as np

from ..parameter import Parameter
from .base import Layer

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Per-channel batch normalization for 2-D (N, F) or 4-D (N, C, H, W) input.

    Parameters
    ----------
    num_features:
        Channel (or feature) count.
    momentum:
        Exponential-moving-average factor for running statistics.
    eps:
        Variance floor.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str | None = None,
    ):
        super().__init__(name)
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps

        self.gamma = Parameter(np.ones(num_features), name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{self.name}.beta")
        self.running_mean = Parameter(
            np.zeros(num_features), name=f"{self.name}.running_mean", trainable=False
        )
        self.running_var = Parameter(
            np.ones(num_features), name=f"{self.name}.running_var", trainable=False
        )
        self._params = [self.gamma, self.beta, self.running_mean, self.running_var]

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _axes(x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    def _shape_for(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        if x.ndim == 4:
            return v.reshape(1, -1, 1, 1)
        return v

    # -- execution ------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._axes(x)
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected {self.num_features} channels, got {x.shape[1]}"
            )
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean.value = m * self.running_mean.value + (1 - m) * mean
            self.running_var.value = m * self.running_var.value + (1 - m) * var
        else:
            mean = self.running_mean.value
            var = self.running_var.value

        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - self._shape_for(x, mean)) * self._shape_for(x, inv_std)
        out = self._shape_for(x, self.gamma.value) * xhat + self._shape_for(x, self.beta.value)
        self._cache = (xhat, inv_std, axes, x.shape)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, inv_std, axes, x_shape = self._cache
        self._cache = None
        m = float(np.prod([x_shape[a] for a in axes]))

        self.gamma.grad += (grad * xhat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)

        g = self._shape_for(grad, self.gamma.value)
        dxhat = grad * g
        # Standard batch-norm backward (training statistics path).
        term = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - xhat * (dxhat * xhat).sum(axis=axes, keepdims=True) / m
        )
        return term * self._shape_for(grad, inv_std)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape)
