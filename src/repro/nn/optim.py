"""Optimizers.

Optimizers operate on a flat list of :class:`~repro.nn.parameter.Parameter`
objects.  Non-trainable parameters (running statistics) are skipped.  An
optional per-parameter post-update hook supports BinaryNet's weight
clipping to [-1, 1].
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from .parameter import Parameter

__all__ = ["Optimizer", "SGD", "NesterovSGD", "RMSProp", "Adam"]

PostUpdateHook = Callable[[Parameter], None]


class Optimizer:
    def __init__(self, params: Iterable[Parameter], lr: float, post_update: PostUpdateHook | None = None):
        self.params = [p for p in params if p.trainable]
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.post_update = post_update

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p in self.params:
            self._update(p)
            if self.post_update is not None:
                self.post_update(p)

    def _update(self, p: Parameter) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional classical momentum and L2 weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        post_update: PostUpdateHook | None = None,
    ):
        super().__init__(params, lr, post_update)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = {id(p): np.zeros_like(p.value) for p in self.params}

    def _update(self, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.value
        if self.momentum:
            v = self._velocity[id(p)]
            v *= self.momentum
            v -= self.lr * grad
            p.value = p.value + v
        else:
            p.value = p.value - self.lr * grad


class NesterovSGD(SGD):
    """SGD with Nesterov momentum (the lookahead variant).

    Uses the standard reformulation: ``p += momentum * v_new - lr * grad``
    with ``v_new = momentum * v - lr * grad``.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        post_update: PostUpdateHook | None = None,
    ):
        if momentum <= 0.0:
            raise ValueError("Nesterov momentum must be positive")
        super().__init__(params, lr, momentum, weight_decay, post_update)

    def _update(self, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.value
        v = self._velocity[id(p)]
        v *= self.momentum
        v -= self.lr * grad
        p.value = p.value + self.momentum * v - self.lr * grad


class RMSProp(Optimizer):
    """RMSProp (Hinton): per-parameter learning rates from a running
    second-moment estimate.  A common Caffe-era training choice."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        decay: float = 0.9,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        post_update: PostUpdateHook | None = None,
    ):
        super().__init__(params, lr, post_update)
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = decay
        self.eps = eps
        self.weight_decay = weight_decay
        self._sq = {id(p): np.zeros_like(p.value) for p in self.params}

    def _update(self, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.value
        sq = self._sq[id(p)]
        sq *= self.decay
        sq += (1 - self.decay) * grad**2
        p.value = p.value - self.lr * grad / (np.sqrt(sq) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba) — BinaryNet's reference training recipe uses Adam."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        post_update: PostUpdateHook | None = None,
    ):
        super().__init__(params, lr, post_update)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = {id(p): np.zeros_like(p.value) for p in self.params}
        self._v = {id(p): np.zeros_like(p.value) for p in self.params}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        super().step()

    def _update(self, p: Parameter) -> None:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.value
        m = self._m[id(p)]
        v = self._v[id(p)]
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad**2
        mhat = m / (1 - self.beta1**self._t)
        vhat = v / (1 - self.beta2**self._t)
        p.value = p.value - self.lr * mhat / (np.sqrt(vhat) + self.eps)
