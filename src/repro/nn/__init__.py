"""From-scratch numpy deep-learning framework.

This subpackage replaces the paper's Caffe dependency: layer-by-layer
forward/backward, explicit optimizers, and a Sequential container — enough
to train and run the host Models A/B/C (Table III), the binarized FINN CNV
network (Table I, via :mod:`repro.bnn`), and the DMU.
"""

from . import functional, initializers, metrics
from .layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    HardTanh,
    Layer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .infer import InferenceEngine
from .quantized import SUPPORTED_BITS, QuantizedEngine
from .losses import BinaryCrossEntropy, Loss, SoftmaxCrossEntropy, SquaredHinge
from .network import Sequential
from .optim import SGD, Adam, NesterovSGD, Optimizer, RMSProp
from .parameter import Parameter
from .serialize import load_model, save_model
from .trainer import Trainer, TrainHistory, accuracy

__all__ = [
    "functional",
    "initializers",
    "metrics",
    "Parameter",
    "Layer",
    "Conv2D",
    "Dense",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "HardTanh",
    "BatchNorm",
    "LocalResponseNorm",
    "Dropout",
    "Flatten",
    "Sequential",
    "InferenceEngine",
    "QuantizedEngine",
    "SUPPORTED_BITS",
    "Loss",
    "SoftmaxCrossEntropy",
    "BinaryCrossEntropy",
    "SquaredHinge",
    "Optimizer",
    "SGD",
    "NesterovSGD",
    "RMSProp",
    "Adam",
    "Trainer",
    "TrainHistory",
    "accuracy",
    "save_model",
    "load_model",
]
