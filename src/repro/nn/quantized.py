"""Post-training 2/4/8-bit quantized inference engines (ladder rungs).

The precision ladder (``docs/LADDER.md``) needs stages *between* the
1-bit BNN and the float host.  :class:`QuantizedEngine` builds them by
post-training uniform quantization of a trained float
:class:`repro.nn.Sequential` — no retraining, same compile idiom as the
float :class:`repro.nn.InferenceEngine` it subclasses (NHWC dataflow,
fused Conv2D+ReLU, preallocated buffers, fixed micro-batches).

Quantization scheme
-------------------
Only the GEMMs are quantized; pooling, LRN, BatchNorm and activations
run in float on the dequantized values (the standard post-training
"fake-quant at the matmuls" shape).  For ``bits`` ∈ {2, 4, 8} and
``Q = 2^(bits-1) - 1`` (1, 7, 127):

* **Weights** — symmetric per-output-channel: ``w_scale[oc] =
  max|W[:, oc]| / Q`` and ``qW = rint(W / w_scale)`` as int32, computed
  once at compile time from the float64 training weights.
* **Activations** — symmetric per-tensor with a *static* scale frozen by
  :meth:`QuantizedEngine.calibrate`: a float pass over a calibration
  batch records ``max|x|`` of each GEMM's input operand (the im2col
  matrix for convs, the activation matrix for dense layers), then
  ``act_scale = max|x| / Q``.  Deployment quantizes with
  ``q = rint(clip(x / act_scale, -Q, Q))``.
* **Accumulation** — integer: ``acc = qX @ qW`` in int32.  This is
  overflow-safe for the host models: the widest GEMM contraction is a
  few thousand terms, each ``|q| ≤ 127``, so ``|acc| ≲ 10^8 < 2^31``.
* **Dequantization** — ``y = acc * (act_scale * w_scale[oc]) + bias``.

Determinism contract — *stronger* than the float engine
-------------------------------------------------------
Integer matmul is exact, quantization and dequantization are
elementwise, and activation scales are frozen constants, so a
calibrated engine's scores are bit-identical across **any** batch
chunking (not just micro-batch-aligned shards).  Tests assert this;
the fixed ``micro_batch`` is kept only for buffer reuse and to match
the shard boundaries :class:`repro.parallel.ParallelHostRunner` uses.

Accuracy expectations (documented tolerances, asserted by
``tests/nn/test_quantized.py`` on Models A/B/C):

* 8-bit: scores within ~2e-2 relative of the float64 reference
  (asserted at 5e-2) and ≥ 99% argmax preservation;
* 4-bit: degraded scores (~0.3 relative, asserted at 0.5) but high
  argmax preservation even on random-weight nets — measured ≥ 99% on
  Models A/B and ≥ 82% on the deeper Model C (asserted at 95%/75%);
  trained nets with real decision margins sit higher.  This is the
  useful middle-rung operating point of the worked example in
  ``docs/LADDER.md``;
* 2-bit: anything goes score-wise; it exists to make the *routing*
  ladder testable with a genuinely weak cheap stage.
"""

from __future__ import annotations

import numpy as np

from .infer import InferenceEngine, _ConvStep, _DenseStep
from .layers.conv import Conv2D
from .layers.dense import Dense

__all__ = ["QuantizedEngine", "SUPPORTED_BITS"]

SUPPORTED_BITS = (2, 4, 8)


def _weight_qparams(wmat: np.ndarray, qmax: int):
    """Symmetric per-output-channel quantization of a (K, out) GEMM matrix."""
    w64 = wmat.astype(np.float64)
    maxabs = np.abs(w64).max(axis=0)
    w_scale = np.where(maxabs > 0.0, maxabs / qmax, 1.0)
    qw = np.rint(w64 / w_scale).astype(np.int32)
    return qw, w_scale


def _quantized_gemm(step, x, bufs, dt):
    """``dequant(rint(clip(x / s)) @ qW)`` with every operand preallocated."""
    rows, width = x.shape[0], step.qw.shape[1]
    qf = bufs.get((step.idx, "qf"), x.shape, dt)
    np.multiply(x, step.inv_act_scale, out=qf)
    np.clip(qf, -step.qmax, step.qmax, out=qf)
    np.rint(qf, out=qf)
    qi = bufs.get((step.idx, "qi"), x.shape, np.int32)
    qi[...] = qf
    acc = bufs.get((step.idx, "acc"), (rows, width), np.int32)
    np.matmul(qi, step.qw, out=acc)
    out = bufs.get((step.idx, "out"), (rows, width), dt)
    np.multiply(acc, step.deq_scale, out=out)
    return out


def _observe(step, x) -> None:
    if x.size:
        step.cal_maxabs = max(step.cal_maxabs, float(np.abs(x).max()))


def _freeze(step) -> None:
    step.act_scale = step.cal_maxabs / step.qmax if step.cal_maxabs > 0.0 else 1.0
    step.inv_act_scale = 1.0 / step.act_scale
    step.deq_scale = step.act_scale * step.w_scale  # (out,) float64


class _QConvStep(_ConvStep):
    """Conv GEMM with int32 accumulation; float path while calibrating."""

    __slots__ = ("qw", "w_scale", "qmax", "act_scale", "cal_maxabs",
                 "inv_act_scale", "deq_scale")

    def __init__(self, idx, k, stride, pad, wmat, bias, fuse_relu, qmax):
        super().__init__(idx, k, stride, pad, wmat, bias, fuse_relu)
        self.qmax = int(qmax)
        self.qw, self.w_scale = _weight_qparams(wmat, qmax)
        self.act_scale = None
        self.cal_maxabs = 0.0

    def _gemm(self, cols, bufs, dt):
        if self.act_scale is None:  # calibration: float GEMM, record range
            _observe(self, cols)
            return super()._gemm(cols, bufs, dt)
        return _quantized_gemm(self, cols, bufs, dt)


class _QDenseStep(_DenseStep):
    """Dense GEMM with int32 accumulation; float path while calibrating."""

    __slots__ = ("qw", "w_scale", "qmax", "act_scale", "cal_maxabs",
                 "inv_act_scale", "deq_scale")

    def __init__(self, idx, wmat, bias, qmax):
        super().__init__(idx, wmat, bias)
        self.qmax = int(qmax)
        self.qw, self.w_scale = _weight_qparams(wmat, qmax)
        self.act_scale = None
        self.cal_maxabs = 0.0

    def _gemm(self, a, bufs, dt):
        if self.act_scale is None:
            _observe(self, a)
            return super()._gemm(a, bufs, dt)
        return _quantized_gemm(self, a, bufs, dt)


class QuantizedEngine(InferenceEngine):
    """Compiled ``bits``-bit post-training-quantized forward.

    Parameters
    ----------
    net:
        Trained float :class:`repro.nn.Sequential` (weights snapshotted
        at construction, like the float engine).
    bits:
        GEMM operand width — one of :data:`SUPPORTED_BITS`.
    calibration_images:
        Optional batch handed straight to :meth:`calibrate`.  Without
        it the engine refuses to predict until calibrated — static
        activation scales are part of the deployed artifact.
    dtype / micro_batch:
        As on :class:`repro.nn.InferenceEngine` (dequantized activation
        precision and the chunk size; see module docstring for why the
        quantized engine is chunking-invariant anyway).
    """

    def __init__(self, net, bits: int = 8, calibration_images=None,
                 dtype=np.float32, micro_batch: int = 16):
        if bits not in SUPPORTED_BITS:
            raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
        # _compile (called by the parent constructor) reads these.
        self.bits = int(bits)
        self.qmax = 2 ** (bits - 1) - 1
        self._calibrated = False
        self._in_calibration = False
        super().__init__(net, dtype=dtype, micro_batch=micro_batch)
        self.name = f"{self.name}-int{bits}"
        if calibration_images is not None:
            self.calibrate(calibration_images)

    def _compile_layer(self, idx, layer, fuse_relu):
        if isinstance(layer, Conv2D):
            base = super()._compile_layer(idx, layer, fuse_relu)
            return _QConvStep(idx, base.k, base.stride, base.pad, base.wmat,
                              base.bias, base.fuse_relu, self.qmax)
        if isinstance(layer, Dense):
            base = super()._compile_layer(idx, layer, fuse_relu)
            return _QDenseStep(idx, base.wmat, base.bias, self.qmax)
        return super()._compile_layer(idx, layer, fuse_relu)

    def _gemm_steps(self):
        return [s for s in self._steps if isinstance(s, (_QConvStep, _QDenseStep))]

    def calibrate(self, images: np.ndarray) -> "QuantizedEngine":
        """Freeze static activation scales from one float pass over *images*.

        Re-calibrating replaces the previous scales entirely.  Returns
        ``self`` so ``compile_quantized(...).calibrate(batch)`` chains.
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        if images.shape[0] == 0:
            raise ValueError("calibration needs at least one image")
        for step in self._gemm_steps():
            step.act_scale = None
            step.cal_maxabs = 0.0
        self._calibrated = False
        self._in_calibration = True
        try:
            super().predict_scores(images)
        finally:
            self._in_calibration = False
        for step in self._gemm_steps():
            _freeze(step)
        self._calibrated = True
        return self

    def predict_scores(self, images: np.ndarray) -> np.ndarray:
        if not self._calibrated and not self._in_calibration:
            raise RuntimeError(
                "QuantizedEngine is uncalibrated: pass calibration_images at "
                "construction or call calibrate(batch) before predicting"
            )
        return super().predict_scores(images)

    def activation_scales(self) -> dict[int, float]:
        """``{step_index: act_scale}`` of the frozen calibration (for docs/tests)."""
        if not self._calibrated:
            raise RuntimeError("engine is not calibrated")
        return {s.idx: float(s.act_scale) for s in self._gemm_steps()}
