"""Loss functions.

Each loss exposes ``forward(logits, targets) -> float`` and
``backward() -> grad`` mirroring the layer protocol.
"""

from __future__ import annotations

import numpy as np

from . import functional as F

__all__ = ["Loss", "SoftmaxCrossEntropy", "BinaryCrossEntropy", "SquaredHinge"]


class Loss:
    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:  # pragma: no cover
        raise NotImplementedError

    def backward(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class SoftmaxCrossEntropy(Loss):
    """Mean cross-entropy over integer class labels."""

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError("logits must be (N, classes)")
        targets = np.asarray(targets)
        n = logits.shape[0]
        logp = F.log_softmax(logits, axis=1)
        self._probs = np.exp(logp)
        self._targets = targets
        return float(-logp[np.arange(n), targets].mean())

    def backward(self) -> np.ndarray:
        n, k = self._probs.shape
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        return grad / n


class BinaryCrossEntropy(Loss):
    """Mean BCE on raw logits (sigmoid applied internally).

    Used to train the DMU: logit -> probability that the BNN classified
    the image correctly.
    """

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = logits.reshape(-1)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1)
        if logits.shape != targets.shape:
            raise ValueError("logits and targets must align")
        self._p = F.sigmoid(logits)
        self._targets = targets
        self._n = logits.shape[0]
        eps = 1e-12
        return float(
            -(targets * np.log(self._p + eps) + (1 - targets) * np.log(1 - self._p + eps)).mean()
        )

    def backward(self) -> np.ndarray:
        return ((self._p - self._targets) / self._n).reshape(-1, 1)


class SquaredHinge(Loss):
    """Mean squared hinge loss on +-1 targets, BinaryNet's training loss.

    Targets are integer class labels; internally encoded to +-1 one-hot.
    """

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        n, k = logits.shape
        y = 2.0 * F.one_hot(np.asarray(targets), k) - 1.0
        margin = np.maximum(0.0, 1.0 - y * logits)
        self._y = y
        self._margin = margin
        self._n = n
        return float((margin**2).mean())

    def backward(self) -> np.ndarray:
        return (-2.0 * self._y * self._margin) / (self._n * self._y.shape[1])
