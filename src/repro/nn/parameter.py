"""Trainable parameter container for the :mod:`repro.nn` framework.

The framework is deliberately Caffe-like (the paper's host networks are
Caffe models): layers own explicit :class:`Parameter` objects, forward and
backward passes are hand-written, and optimizers mutate ``param.value``
in place using ``param.grad``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A named tensor with an accumulated gradient.

    Parameters
    ----------
    value:
        Initial value.  Stored as ``float64`` by default so that training
        in pure numpy is numerically robust; callers may pass any float
        dtype and it is preserved.
    name:
        Human-readable name used in summaries and state dicts.
    trainable:
        Untrainable parameters (e.g. batch-norm running statistics) are
        skipped by optimizers but still saved/restored.
    """

    def __init__(self, value: np.ndarray, name: str = "param", trainable: bool = True):
        self.value = np.asarray(value)
        self.grad = np.zeros_like(self.value)
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.value.shape)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad = np.zeros_like(self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "trainable" if self.trainable else "frozen"
        return f"Parameter({self.name!r}, shape={self.shape}, {kind})"
