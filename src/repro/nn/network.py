"""Sequential network container."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .layers.base import Layer
from .parameter import Parameter

__all__ = ["Sequential"]


class Sequential:
    """A feed-forward stack of layers with shared train/eval mode.

    All the paper's networks — FINN CNV, host Models A/B/C and the DMU —
    are plain sequential stacks, so this container is the full model
    abstraction the reproduction needs.
    """

    def __init__(self, layers: Sequence[Layer] | None = None, name: str = "net"):
        self.layers: list[Layer] = list(layers or [])
        self.name = name

    # -- construction ---------------------------------------------------------
    def add(self, layer: Layer) -> "Sequential":
        self.layers.append(layer)
        return self

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx):
        return self.layers[idx]

    # -- parameters -------------------------------------------------------
    def params(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.params()]

    def num_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of all parameters keyed by position and name."""
        state = {}
        for i, layer in enumerate(self.layers):
            for j, p in enumerate(layer.params()):
                state[f"{i}:{j}:{p.name}"] = p.value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = {}
        for i, layer in enumerate(self.layers):
            for j, p in enumerate(layer.params()):
                own[f"{i}:{j}:{p.name}"] = p
        if set(own) != set(state):
            missing = set(own) - set(state)
            extra = set(state) - set(own)
            raise KeyError(f"state mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
        for key, p in own.items():
            if p.value.shape != state[key].shape:
                raise ValueError(f"shape mismatch for {key}")
            p.value = state[key].copy()

    # -- execution ------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def compile_inference(self, dtype=None, micro_batch: int = 16):
        """Compile this network into an :class:`repro.nn.InferenceEngine`.

        The engine is the serving fast path: eval-only, fused Conv2D+ReLU,
        preallocated buffers, no backward bookkeeping (see
        :mod:`repro.nn.infer`).  Weights are snapshotted at compile time,
        so call this *after* training / ``load_state_dict``.  ``dtype``
        defaults to float32 — the paper host's inference precision.
        """
        from .infer import InferenceEngine

        return InferenceEngine(
            self, dtype=np.float32 if dtype is None else dtype, micro_batch=micro_batch
        )

    def compile_quantized(
        self,
        bits: int = 8,
        calibration_images=None,
        dtype=None,
        micro_batch: int = 16,
    ):
        """Compile a post-training ``bits``-bit :class:`repro.nn.QuantizedEngine`.

        The quantized sibling of :meth:`compile_inference`, used for the
        middle rungs of a precision ladder (``docs/LADDER.md``).  Pass a
        ``calibration_images`` batch here or call ``.calibrate(batch)``
        on the result before predicting — activation scales are static.
        """
        from .quantized import QuantizedEngine

        return QuantizedEngine(
            self,
            bits=bits,
            calibration_images=calibration_images,
            dtype=np.float32 if dtype is None else dtype,
            micro_batch=micro_batch,
        )

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Run inference in eval mode, batched to bound memory."""
        self.eval_mode()
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size]))
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        return self.predict(x, batch_size).argmax(axis=1)

    # -- shapes -----------------------------------------------------------
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def summary(self, input_shape: tuple[int, ...]) -> str:
        """Human-readable per-layer table of output shapes and param counts."""
        lines = [f"{self.name}:"]
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(f"  {layer!r:50s} -> {shape}  params={layer.num_params()}")
        lines.append(f"  total params: {self.num_params()}")
        return "\n".join(lines)

    # -- modes ------------------------------------------------------------
    def train_mode(self) -> None:
        for layer in self.layers:
            layer.train_mode()

    def eval_mode(self) -> None:
        for layer in self.layers:
            layer.eval_mode()
