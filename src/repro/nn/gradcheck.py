"""Numerical gradient checking utilities.

Used throughout the test suite to validate every hand-written backward
pass against central finite differences.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .layers.base import Layer

__all__ = ["numerical_gradient", "check_layer_gradients"]


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at ``x``."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f(x)
        x[idx] = orig - eps
        fm = f(x)
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    training: bool = True,
    check_params: bool = True,
) -> None:
    """Assert analytic input/parameter gradients match finite differences.

    Uses the scalar objective ``sum(w * layer(x))`` with a fixed random
    weighting ``w`` so every output element participates.
    """
    rng = np.random.default_rng(1234)
    if training:
        layer.train_mode()
    else:
        layer.eval_mode()

    out = layer.forward(x.copy())
    w = rng.normal(size=out.shape)

    for p in layer.params():
        p.zero_grad()
    out = layer.forward(x.copy())
    dx = layer.backward(w)

    def loss_wrt_input(xv: np.ndarray) -> float:
        return float((layer.forward(xv) * w).sum())

    num_dx = numerical_gradient(loss_wrt_input, x.copy())
    np.testing.assert_allclose(dx, num_dx, rtol=rtol, atol=atol)

    if not check_params:
        return
    for p in layer.params():
        if not p.trainable:
            continue
        analytic = p.grad.copy()
        original = p.value.copy()

        def loss_wrt_param(v: np.ndarray, p=p) -> float:
            p.value = v
            result = float((layer.forward(x.copy()) * w).sum())
            return result

        num = numerical_gradient(loss_wrt_param, original.copy())
        p.value = original
        np.testing.assert_allclose(analytic, num, rtol=rtol, atol=atol, err_msg=p.name)
