"""Classification metrics beyond top-1 accuracy.

Used by the experiments to show *where* the binarized network loses
accuracy (the confusable class pairs) and what the cascade recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "per_class_accuracy",
    "ClassificationReport",
    "classification_report",
    "top_k_accuracy",
]


def confusion_matrix(
    true_labels: np.ndarray, predictions: np.ndarray, num_classes: int
) -> np.ndarray:
    """Counts matrix ``M[i, j]`` = images of class ``i`` predicted as ``j``."""
    true_labels = np.asarray(true_labels)
    predictions = np.asarray(predictions)
    if true_labels.shape != predictions.shape:
        raise ValueError("labels and predictions must align")
    if true_labels.size and (
        true_labels.min() < 0
        or true_labels.max() >= num_classes
        or predictions.min() < 0
        or predictions.max() >= num_classes
    ):
        raise ValueError("labels out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (true_labels, predictions), 1)
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall per class; NaN for classes with no samples."""
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose true label is among the k highest scores."""
    scores = np.asarray(scores)
    labels = np.asarray(labels)
    if scores.ndim != 2 or labels.shape != (scores.shape[0],):
        raise ValueError("scores must be (N, C) with matching labels")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError("k out of range")
    if scores.shape[0] == 0:
        return 0.0
    topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


@dataclass(frozen=True)
class ClassificationReport:
    """Aggregated multi-class evaluation."""

    matrix: np.ndarray
    class_names: tuple[str, ...]

    @property
    def accuracy(self) -> float:
        total = self.matrix.sum()
        return float(np.diag(self.matrix).sum() / total) if total else 0.0

    @property
    def class_accuracy(self) -> np.ndarray:
        return per_class_accuracy(self.matrix)

    def most_confused_pairs(self, top: int = 3) -> list[tuple[str, str, int]]:
        """Off-diagonal (true, predicted, count) cells, largest first."""
        offdiag = self.matrix.copy()
        np.fill_diagonal(offdiag, 0)
        flat = offdiag.ravel()
        order = np.argsort(flat)[::-1][:top]
        n = self.matrix.shape[0]
        return [
            (self.class_names[i // n], self.class_names[i % n], int(flat[i]))
            for i in order
            if flat[i] > 0
        ]

    def format(self) -> str:
        lines = [f"accuracy: {100 * self.accuracy:.1f}%"]
        for name, acc in zip(self.class_names, self.class_accuracy):
            shown = "n/a" if np.isnan(acc) else f"{100 * acc:.1f}%"
            lines.append(f"  {name:12s} {shown}")
        pairs = self.most_confused_pairs()
        if pairs:
            lines.append("most confused (true -> predicted):")
            for a, b, count in pairs:
                lines.append(f"  {a} -> {b}: {count}")
        return "\n".join(lines)


def classification_report(
    true_labels: np.ndarray,
    predictions: np.ndarray,
    class_names: tuple[str, ...],
) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from labels and predictions."""
    matrix = confusion_matrix(true_labels, predictions, len(class_names))
    return ClassificationReport(matrix=matrix, class_names=tuple(class_names))
