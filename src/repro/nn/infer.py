"""Inference fast path: a compiled, allocation-free forward for Sequential nets.

``Sequential.forward`` is a training loop in disguise: every layer keeps
backward bookkeeping alive (im2col matrices, ReLU masks, pooling argmax
indices), re-allocates its activations per call, and walks NCHW tensors
through transposes that force copies in the next layer.  None of that is
needed to *serve* a trained host model (Table III Models A/B/C), and after
the PR 2 kernel speedups the float host path dominates the Eq. (1) budget
``t_multi = max(t_fp * R_rerun, t_bnn)`` — so the host forward is now the
hot path worth compiling.

:class:`InferenceEngine` walks the layer stack once at construction and
emits a flat list of eval-only steps:

* **NHWC dataflow** — convolution becomes im2col + one GEMM whose output
  *is* the next layer's NHWC input: the per-conv ``transpose(0, 3, 1, 2)``
  copy of the training path disappears entirely.
* **Conv2D + ReLU fusion** — the ReLU is applied in place on the GEMM
  output buffer before it is ever re-read.
* **Preallocated buffers** — im2col/col matrices, GEMM outputs, pooling
  and LRN scratch are allocated once per (step, micro-batch geometry) and
  reused across calls; padded borders are zeroed exactly once.
* **LRN via cumulative sums** — the cross-channel sliding window is two
  cumsum slices (O(C) not O(C·size)), computed into reused scratch.
* **Dropout is a true no-op** and no step retains anything backward
  would need.
* **1x1 convolutions skip im2col** — the activation matrix is already the
  GEMM operand in NHWC layout (NiN's mlpconv stacks, Model B).

Determinism contract
--------------------
The engine processes inputs in fixed *micro-batches* (``micro_batch``
images at a time, remainder last).  Because each micro-batch is an
independent pure function of its pixels, any sharding of a request batch
**along micro-batch boundaries** reproduces the serial logits *bit for
bit* — this is what lets :class:`repro.parallel.ParallelHostRunner`
fan a batch out to worker processes and still return bit-identical
logits for any worker count.  (Splitting *inside* a micro-batch is not
bit-stable: BLAS GEMM accumulation order may change with the number of
rows.)

``dtype`` selects the inference precision.  ``float32`` — the precision
the paper's ARM host actually runs — roughly doubles GEMM and memory
throughput over the float64 training representation; logits then match
the float64 training forward to ~1e-5 relative (argmax preserved), while
float64 mode tracks it to ~1e-12.  Weights are snapshotted at
construction: compile *after* training / ``load_state_dict``.
"""

from __future__ import annotations

import numpy as np

from .layers.activations import HardTanh, ReLU, Sigmoid, Tanh
from .layers.batchnorm import BatchNorm
from .layers.conv import Conv2D
from .layers.dense import Dense
from .layers.dropout import Dropout
from .layers.flatten import Flatten
from .layers.lrn import LocalResponseNorm
from .layers.pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from . import functional as F

__all__ = ["InferenceEngine"]

_STRIDED = np.lib.stride_tricks.as_strided


class _BufferPool:
    """Per-engine scratch arrays, keyed by (step, role, shape)."""

    def __init__(self):
        self._arrays: dict[tuple, np.ndarray] = {}

    def get(self, key: tuple, shape: tuple[int, ...], dtype, zero: bool = False):
        """Reusable buffer; freshly allocated ones are zeroed iff *zero*.

        A *zero* buffer is only cleared on allocation — callers rely on
        overwriting the interior every call while padded borders stay
        zero from the first fill (the zero-once padding trick).
        """
        full_key = key + (shape,)
        buf = self._arrays.get(full_key)
        if buf is None:
            buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            self._arrays[full_key] = buf
        return buf

    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())


class InferenceEngine:
    """Compiled eval-only forward for a :class:`repro.nn.Sequential`.

    Parameters
    ----------
    net:
        The trained network.  Weights are snapshotted (cast to *dtype*)
        at construction; later weight mutations are not seen.
    dtype:
        Inference precision (default ``float32`` — see module docstring).
    micro_batch:
        Fixed processing chunk.  Larger amortizes numpy dispatch, smaller
        bounds memory; it also defines the bit-stable shard boundaries
        used by :class:`repro.parallel.ParallelHostRunner`.
    """

    def __init__(self, net, dtype=np.float32, micro_batch: int = 16):
        if micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError("InferenceEngine requires a float dtype")
        self.micro_batch = int(micro_batch)
        self.name = getattr(net, "name", "net")
        self._bufs = _BufferPool()
        self._steps = self._compile(net)

    # -- compilation ---------------------------------------------------------
    def _compile(self, net) -> list:
        layers = list(net)
        steps: list = []
        i = 0
        while i < len(layers):
            layer = layers[i]
            fuse_relu = isinstance(layer, Conv2D) and i + 1 < len(layers) and isinstance(
                layers[i + 1], ReLU
            )
            step = self._compile_layer(len(steps), layer, fuse_relu)
            if step is not None:
                steps.append(step)
            i += 2 if fuse_relu else 1
        return steps

    def _compile_layer(self, idx: int, layer, fuse_relu: bool):
        dt = self.dtype
        if isinstance(layer, Conv2D):
            k = layer.kernel_size
            wmat = np.ascontiguousarray(
                layer.weight.value.transpose(2, 3, 1, 0).reshape(-1, layer.out_channels),
                dtype=dt,
            )
            bias = None if layer.bias is None else layer.bias.value.astype(dt)
            return _ConvStep(idx, k, layer.stride, layer.pad, wmat, bias, fuse_relu)
        if isinstance(layer, Dense):
            wmat = np.ascontiguousarray(layer.weight.value, dtype=dt)
            bias = None if layer.bias is None else layer.bias.value.astype(dt)
            return _DenseStep(idx, wmat, bias)
        if isinstance(layer, (MaxPool2D, AvgPool2D)):
            return _PoolStep(
                idx, layer.window, layer.stride, layer.pad, isinstance(layer, MaxPool2D)
            )
        if isinstance(layer, LocalResponseNorm):
            return _LRNStep(idx, layer.size, layer.alpha, layer.beta, layer.k)
        if isinstance(layer, GlobalAvgPool2D):
            return _GlobalAvgStep(idx)
        if isinstance(layer, Flatten):
            return _FlattenStep(idx)
        if isinstance(layer, BatchNorm):
            inv_std = 1.0 / np.sqrt(layer.running_var.value + layer.eps)
            scale = (layer.gamma.value * inv_std).astype(dt)
            shift = (layer.beta.value - layer.running_mean.value * layer.gamma.value * inv_std).astype(dt)
            return _BatchNormStep(idx, scale, shift)
        if isinstance(layer, ReLU):
            return _ElementwiseStep(idx, "relu")
        if isinstance(layer, Tanh):
            return _ElementwiseStep(idx, "tanh")
        if isinstance(layer, Sigmoid):
            return _ElementwiseStep(idx, "sigmoid")
        if isinstance(layer, HardTanh):
            return _ElementwiseStep(idx, "hardtanh")
        if isinstance(layer, Dropout):
            return None  # true no-op in eval: no RNG draw, no mask, no copy
        raise ValueError(
            f"InferenceEngine cannot compile layer {layer!r}; "
            "extend repro.nn.infer or fall back to Sequential.forward"
        )

    # -- execution ------------------------------------------------------------
    def _run_chunk(self, chunk: np.ndarray) -> np.ndarray:
        n, c, h, w = chunk.shape
        entry = self._bufs.get(("entry",), (n, h, w, c), self.dtype)
        # Single cast + layout change: NCHW (any float dtype) -> NHWC dtype.
        entry[...] = chunk.transpose(0, 2, 3, 1)
        a = entry
        for step in self._steps:
            a = step.run(a, self._bufs, self.dtype)
        return a

    def predict_scores(self, images: np.ndarray) -> np.ndarray:
        """Class scores ``(N, C)`` in engine dtype, micro-batched."""
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        n = images.shape[0]
        out: np.ndarray | None = None
        for start in range(0, n, self.micro_batch):
            scores = self._run_chunk(images[start : start + self.micro_batch])
            if out is None:
                out = np.empty((n,) + scores.shape[1:], self.dtype)
            out[start : start + scores.shape[0]] = scores
        if out is None:
            # Class count without running data: ask the first Dense/conv head.
            return np.empty((0, self.num_classes_hint()), self.dtype)
        return out

    def predict_classes(self, images: np.ndarray) -> np.ndarray:
        return self.predict_scores(images).argmax(axis=1)

    __call__ = predict_scores

    def num_classes_hint(self) -> int:
        """Best-effort output width for empty-batch calls."""
        for step in reversed(self._steps):
            width = step.out_width()
            if width is not None:
                return width
        return 0

    def scratch_nbytes(self) -> int:
        """Bytes currently held by the reusable buffer pool."""
        return self._bufs.nbytes()


class _Step:
    __slots__ = ("idx",)

    def out_width(self) -> int | None:
        return None


class _ConvStep(_Step):
    __slots__ = ("k", "stride", "pad", "wmat", "bias", "fuse_relu")

    def __init__(self, idx, k, stride, pad, wmat, bias, fuse_relu):
        self.idx = idx
        self.k = k
        self.stride = stride
        self.pad = pad
        self.wmat = wmat
        self.bias = bias
        self.fuse_relu = fuse_relu

    def out_width(self):
        return self.wmat.shape[1]

    def _gather(self, a, bufs, dt):
        """im2col into a reused buffer; returns ``(cols, n, oh, ow)``."""
        n, h, w, c = a.shape
        k, st, p = self.k, self.stride, self.pad
        oh = F.conv_output_size(h, k, st, p)
        ow = F.conv_output_size(w, k, st, p)
        if p:
            padded = bufs.get((self.idx, "pad"), (n, h + 2 * p, w + 2 * p, c), dt, zero=True)
            padded[:, p : p + h, p : p + w, :] = a
            src = padded
        else:
            src = a
        if k == 1 and st == 1:
            cols = src.reshape(n * oh * ow, c)  # NHWC rows are the GEMM operand
        else:
            cols = bufs.get((self.idx, "cols"), (n * oh * ow, k * k * c), dt)
            sn, sh, sw, sc = src.strides
            windows = _STRIDED(
                src,
                shape=(n, oh, ow, k, k, c),
                strides=(sn, sh * st, sw * st, sh, sw, sc),
                writeable=False,
            )
            cols.reshape(n, oh, ow, k, k, c)[...] = windows  # one strided gather
        return cols, n, oh, ow

    def _gemm(self, cols, bufs, dt):
        out = bufs.get((self.idx, "out"), (cols.shape[0], self.wmat.shape[1]), dt)
        np.matmul(cols, self.wmat, out=out)
        return out

    def run(self, a, bufs, dt):
        cols, n, oh, ow = self._gather(a, bufs, dt)
        out = self._gemm(cols, bufs, dt)
        if self.bias is not None:
            out += self.bias
        if self.fuse_relu:
            np.maximum(out, 0.0, out=out)
        return out.reshape(n, oh, ow, self.wmat.shape[1])


class _DenseStep(_Step):
    __slots__ = ("wmat", "bias")

    def __init__(self, idx, wmat, bias):
        self.idx = idx
        self.wmat = wmat
        self.bias = bias

    def out_width(self):
        return self.wmat.shape[1]

    def _gemm(self, a, bufs, dt):
        out = bufs.get((self.idx, "out"), (a.shape[0], self.wmat.shape[1]), dt)
        np.matmul(a, self.wmat, out=out)
        return out

    def run(self, a, bufs, dt):
        out = self._gemm(a, bufs, dt)
        if self.bias is not None:
            out += self.bias
        return out


class _PoolStep(_Step):
    __slots__ = ("window", "stride", "pad", "is_max")

    def __init__(self, idx, window, stride, pad, is_max):
        self.idx = idx
        self.window = window
        self.stride = stride
        self.pad = pad
        self.is_max = is_max

    def run(self, a, bufs, dt):
        n, h, w, c = a.shape
        win, st, p = self.window, self.stride, self.pad
        if p:
            padded = bufs.get((self.idx, "pad"), (n, h + 2 * p, w + 2 * p, c), dt, zero=True)
            padded[:, p : p + h, p : p + w, :] = a
            src = padded
        else:
            src = a
        oh = F.pool_output_size(h, win, st, p)
        ow = F.pool_output_size(w, win, st, p)
        sn, sh, sw, sc = src.strides
        windows = _STRIDED(
            src,
            shape=(n, oh, ow, win, win, c),
            strides=(sn, sh * st, sw * st, sh, sw, sc),
            writeable=False,
        )
        out = bufs.get((self.idx, "out"), (n, oh, ow, c), dt)
        if self.is_max:
            np.amax(windows, axis=(3, 4), out=out)
        else:
            np.mean(windows, axis=(3, 4), out=out)
        return out


class _LRNStep(_Step):
    __slots__ = ("size", "alpha", "beta", "k")

    def __init__(self, idx, size, alpha, beta, k):
        self.idx = idx
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def run(self, a, bufs, dt):
        n, h, w, c = a.shape
        half = self.size // 2
        # x^2 embedded in a zero halo; the halo never needs re-zeroing.
        padded = bufs.get((self.idx, "sq"), (n, h, w, c + 2 * half), dt, zero=True)
        np.multiply(a, a, out=padded[..., half : half + c])
        csum = bufs.get((self.idx, "csum"), padded.shape, dt)
        np.cumsum(padded, axis=-1, out=csum)
        # Sliding-window sum over the channel axis as two cumsum slices.
        scale = bufs.get((self.idx, "scale"), (n, h, w, c), dt)
        scale[...] = csum[..., self.size - 1 :]
        scale[..., 1:] -= csum[..., : c - 1]
        scale *= self.alpha / self.size
        scale += self.k
        np.power(scale, -self.beta, out=scale)
        out = bufs.get((self.idx, "out"), (n, h, w, c), dt)
        np.multiply(a, scale, out=out)
        return out


class _GlobalAvgStep(_Step):
    __slots__ = ()

    def __init__(self, idx):
        self.idx = idx

    def run(self, a, bufs, dt):
        out = bufs.get((self.idx, "out"), (a.shape[0], a.shape[3]), dt)
        np.mean(a, axis=(1, 2), out=out)
        return out


class _FlattenStep(_Step):
    __slots__ = ()

    def __init__(self, idx):
        self.idx = idx

    def run(self, a, bufs, dt):
        n, h, w, c = a.shape
        # Dense weights expect the training layout: flat (C, H, W) order.
        out = bufs.get((self.idx, "out"), (n, c * h * w), dt)
        out.reshape(n, c, h, w)[...] = a.transpose(0, 3, 1, 2)
        return out


class _BatchNormStep(_Step):
    __slots__ = ("scale", "shift")

    def __init__(self, idx, scale, shift):
        self.idx = idx
        self.scale = scale
        self.shift = shift

    def run(self, a, bufs, dt):
        out = bufs.get((self.idx, "out"), a.shape, dt)
        np.multiply(a, self.scale, out=out)  # channels are the last axis in NHWC
        out += self.shift
        return out


class _ElementwiseStep(_Step):
    __slots__ = ("kind",)

    def __init__(self, idx, kind):
        self.idx = idx
        self.kind = kind

    def run(self, a, bufs, dt):
        if self.kind == "relu":
            np.maximum(a, 0.0, out=a)
        elif self.kind == "tanh":
            np.tanh(a, out=a)
        elif self.kind == "hardtanh":
            np.clip(a, -1.0, 1.0, out=a)
        else:  # sigmoid — stable form, allocates (rare in the host models)
            a = F.sigmoid(a).astype(dt, copy=False)
        return a
