"""Trace exporters: Chrome trace-event JSON and plain JSON summaries.

``chrome://tracing`` / Perfetto's legacy JSON format renders the
cascade's timeline directly: one track per thread, nested "X" (complete)
events for spans, "C" (counter) tracks for queue depths and R_rerun
counters, "i" (instant) markers for decisions.  Loading the emitted file
makes the paper's Eq. (1) overlap claim *visible* — the ``serve.bnn``
and ``serve.host`` tracks run simultaneously when the cascade pipelines
correctly.

Format reference: the Trace Event Format (Google, "JSON Array Format" /
"JSON Object Format").  Timestamps are microseconds; we emit the object
form ``{"traceEvents": [...]}`` which both viewers accept.

:func:`timeline_to_chrome` converts the *simulated* timeline of
:mod:`repro.hetero` (virtual seconds, one track per device) to the same
format, so measured and simulated cascades can be compared in one UI.
The function duck-types on ``timeline.intervals`` to keep ``repro.obs``
dependency-free.
"""

from __future__ import annotations

import json
from pathlib import Path

from .stats import summarize_spans
from .tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "trace_summary",
    "timeline_to_chrome",
]

_PID = 1


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """All tracer events as Chrome trace-event dicts (ts in microseconds)."""
    events: list[dict] = []
    thread_names: dict[int, str] = {}

    for span in tracer.spans:
        thread_names.setdefault(span.thread_id, span.thread_name)
        args = {"depth": span.depth}
        if span.parent:
            args["parent"] = span.parent
        args.update(span.args)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": _PID,
                "tid": span.thread_id,
                "args": args,
            }
        )

    for name, ts, tid, args in tracer.instants:
        events.append(
            {
                "name": name,
                "cat": "instant",
                "ph": "i",
                "s": "t",          # thread-scoped marker
                "ts": ts * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": dict(args),
            }
        )

    for name, samples in tracer.counter_samples().items():
        for ts, value in samples:
            events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": ts * 1e6,
                    "pid": _PID,
                    "args": {"value": value},
                }
            )
    for name, samples in tracer.gauge_samples().items():
        for ts, value in samples:
            events.append(
                {
                    "name": name,
                    "cat": "gauge",
                    "ph": "C",
                    "ts": ts * 1e6,
                    "pid": _PID,
                    "args": {"value": value},
                }
            )

    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": thread_name},
        }
        for tid, thread_name in sorted(thread_names.items())
    ]
    return metadata + sorted(events, key=lambda e: e["ts"])


def to_chrome_trace(tracer: Tracer) -> dict:
    """The full Chrome-loadable trace object."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(tracer.spans),
            "dropped": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the trace JSON; load the file in chrome://tracing or Perfetto."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(tracer), indent=1) + "\n")
    return path


def trace_summary(tracer: Tracer) -> dict:
    """JSON-serializable digest: span summaries + final counters + drops."""
    return {
        "spans": {
            name: summary.as_dict()
            for name, summary in summarize_spans(tracer.spans).items()
        },
        "counters": tracer.counters(),
        "dropped": tracer.dropped,
    }


def timeline_to_chrome(timeline, time_scale: float = 1e6) -> dict:
    """Convert a :class:`repro.hetero.Timeline` to Chrome trace format.

    The simulator runs in virtual seconds; ``time_scale`` maps them to
    trace microseconds (default 1:1 real time).  Each device becomes a
    named track, so the Fig. 2 async/wait overlap of FPGA batch ``i``
    with host rerun ``i-1`` renders exactly like a measured trace.
    """
    devices = sorted({interval.device for interval in timeline.intervals})
    tids = {device: index + 1 for index, device in enumerate(devices)}
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": f"sim:{device}"},
        }
        for device, tid in tids.items()
    ]
    for interval in timeline.intervals:
        events.append(
            {
                "name": interval.label,
                "cat": "simulated",
                "ph": "X",
                "ts": interval.start * time_scale,
                "dur": (interval.end - interval.start) * time_scale,
                "pid": _PID,
                "tid": tids[interval.device],
                "args": {"device": interval.device},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
