"""Observability: tracing & profiling for the multi-precision cascade.

The paper's claims are timing claims — Eq. (1) ``t_multi = max(t_fp *
R_rerun, t_bnn)`` asserts BNN/host *overlap*, and FINN's Eqs. (3)–(5)
predict where cycles go inside the BNN.  ``repro.obs`` makes both
checkable on a live run:

* :mod:`~repro.obs.tracer` — thread-safe span tracer
  (:func:`trace_span` context manager, :func:`traced` decorator),
  counters / gauges / instants; near-zero overhead while no tracer is
  installed, which is the default.
* :mod:`~repro.obs.stats` — histograms with percentile summaries,
  per-span-name latency digests, and the BNN-vs-host overlap
  measurement.
* :mod:`~repro.obs.export` — Chrome ``chrome://tracing`` / Perfetto
  trace-event JSON, plain JSON summaries, and a converter for the
  simulated :mod:`repro.hetero` timeline.
* :mod:`~repro.obs.residuals` — Eq. (1)/(1N) and Eqs. (3)–(5)
  predicted-vs-measured residuals (2-stage and N-stage ladders).

The serving layer (:mod:`repro.serve`), the folded BNN
(:class:`repro.bnn.FoldedBNN`), the kernel autotuner and the offline
cascade are pre-instrumented; ``python -m repro trace`` records a run
and writes the timeline.  See ``docs/OBSERVABILITY.md``.
"""

from .export import (
    chrome_trace_events,
    timeline_to_chrome,
    to_chrome_trace,
    trace_summary,
    write_chrome_trace,
)
from .residuals import eq1_residual, eq345_layer_residuals, ladder_eq1_residual
from .stats import (
    Histogram,
    SpanSummary,
    format_span_summaries,
    percentile,
    span_overlap_seconds,
    summarize_spans,
)
from .tracer import (
    Span,
    Tracer,
    active,
    count,
    enabled,
    gauge,
    install,
    instant,
    trace_span,
    traced,
    tracing,
    uninstall,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "install",
    "uninstall",
    "active",
    "enabled",
    "tracing",
    "trace_span",
    "traced",
    "count",
    "gauge",
    "instant",
    # stats
    "Histogram",
    "SpanSummary",
    "percentile",
    "summarize_spans",
    "span_overlap_seconds",
    "format_span_summaries",
    # export
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "trace_summary",
    "timeline_to_chrome",
    # residuals
    "eq1_residual",
    "ladder_eq1_residual",
    "eq345_layer_residuals",
]
