"""Thread-safe span tracer for the cascade's hot paths.

The paper's headline claim, Eq. (1) ``t_multi ≈ max(t_fp * R_rerun,
t_bnn)``, is a statement about *overlap*: it holds only while the BNN
stage and the host re-inference genuinely run in parallel.  This module
records *where wall-clock time goes* so that claim becomes visible
instead of assumed — every instrumented region becomes a :class:`Span`
(monotonic-clock start/duration, thread, nesting depth), and counters /
gauges capture queue depths and R_rerun decisions alongside.

Design constraints (stdlib-only, no third-party imports):

* **Near-zero overhead when disabled.**  No tracer installed means
  :func:`trace_span` returns one shared no-op context manager and the
  ``count``/``gauge``/``instant`` helpers return after a single global
  read.  No dict, no object, no lock is touched.
* **Thread-safe when enabled.**  Every worker thread of a
  :class:`repro.serve.CascadeServer` records into the same tracer; a
  single lock guards the event lists and a ``threading.local`` stack
  tracks per-thread span nesting.
* **Bounded memory.**  ``max_events`` caps retained spans; overflow
  increments ``dropped`` instead of growing without bound.

Use :func:`tracing` (context manager) or :func:`install`/:func:`uninstall`
to activate a tracer process-wide, then export via
:mod:`repro.obs.export` and summarize via :mod:`repro.obs.stats`.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "install",
    "uninstall",
    "active",
    "enabled",
    "tracing",
    "trace_span",
    "traced",
    "count",
    "gauge",
    "instant",
]


@dataclass(frozen=True)
class Span:
    """One completed timed region (times in seconds since the tracer epoch)."""

    name: str
    start: float
    end: float
    thread_id: int
    thread_name: str
    depth: int                   # 0 = top-level within its thread
    parent: str | None           # enclosing span's name, if any
    category: str = ""
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans, counters, gauges and instant events.

    Parameters
    ----------
    max_events:
        Cap on retained spans + instants (counter/gauge samples share a
        separate cap of the same size).  Overflow is counted in
        :attr:`dropped`, never raised.
    clock:
        Monotonic clock; ``time.perf_counter`` by default.  Injectable
        for deterministic tests and golden files.
    """

    def __init__(self, max_events: int = 1_000_000, clock=time.perf_counter):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = int(max_events)
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._instants: list[tuple[str, float, int, dict]] = []
        #: name -> cumulative value; samples as (ts, cumulative) pairs.
        self._counters: dict[str, float] = {}
        self._counter_samples: dict[str, list[tuple[float, float]]] = {}
        self._gauge_samples: dict[str, list[tuple[float, float]]] = {}
        self._sample_count = 0
        self._tls = threading.local()
        self.dropped = 0

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return self._clock() - self._epoch

    # -- spans ---------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, category: str = "", **args) -> "_SpanContext":
        """Context manager timing a region; records a :class:`Span` on exit."""
        return _SpanContext(self, name, category, args)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "",
        thread_id: int | None = None,
        thread_name: str | None = None,
        depth: int = 0,
        parent: str | None = None,
        **args,
    ) -> None:
        """Record a span retrospectively (e.g. from pre-measured intervals)."""
        if thread_id is None:
            thread_id = threading.get_ident()
        if thread_name is None:
            thread_name = threading.current_thread().name
        span = Span(
            name=name, start=start, end=end, thread_id=thread_id,
            thread_name=thread_name, depth=depth, parent=parent,
            category=category, args=args,
        )
        with self._lock:
            if len(self._spans) + len(self._instants) >= self.max_events:
                self.dropped += 1
                return
            self._spans.append(span)

    # -- counters / gauges / instants ---------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        """Add to a cumulative counter and sample its new value."""
        ts = self.now()
        with self._lock:
            value = self._counters.get(name, 0) + delta
            self._counters[name] = value
            self._record_sample(self._counter_samples, name, ts, value)

    def gauge(self, name: str, value: float) -> None:
        """Sample an instantaneous level (queue depth, threshold, ...)."""
        with self._lock:
            self._record_sample(self._gauge_samples, name, self.now(), float(value))

    def _record_sample(self, table, name, ts, value) -> None:
        if self._sample_count >= self.max_events:
            self.dropped += 1
            return
        table.setdefault(name, []).append((ts, value))
        self._sample_count += 1

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        ts = self.now()
        tid = threading.get_ident()
        with self._lock:
            if len(self._spans) + len(self._instants) >= self.max_events:
                self.dropped += 1
                return
            self._instants.append((name, ts, tid, args))

    # -- reading -------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    @property
    def instants(self) -> list[tuple[str, float, int, dict]]:
        with self._lock:
            return list(self._instants)

    def counters(self) -> dict[str, float]:
        """Final cumulative counter values."""
        with self._lock:
            return dict(self._counters)

    def counter_samples(self) -> dict[str, list[tuple[float, float]]]:
        with self._lock:
            return {k: list(v) for k, v in self._counter_samples.items()}

    def gauge_samples(self) -> dict[str, list[tuple[float, float]]]:
        with self._lock:
            return {k: list(v) for k, v in self._gauge_samples.items()}


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start", "_parent", "_depth")

    def __init__(self, tracer: Tracer, name: str, category: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_SpanContext":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._name)
        self._start = self._tracer.now()
        return self

    def __exit__(self, *exc) -> None:
        end = self._tracer.now()
        stack = self._tracer._stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        self._tracer.add_span(
            self._name,
            self._start,
            end,
            category=self._category,
            depth=self._depth,
            parent=self._parent,
            **self._args,
        )


class _NullContext:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_CONTEXT = _NullContext()

#: The process-wide tracer; ``None`` means tracing is disabled.
_ACTIVE: Tracer | None = None


def install(tracer: Tracer | None = None) -> Tracer:
    """Activate *tracer* (a fresh one when omitted) process-wide."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def uninstall() -> Tracer | None:
    """Disable tracing; returns the tracer that was active, if any."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def enabled() -> bool:
    """True when a tracer is installed (the cheap hot-path check)."""
    return _ACTIVE is not None


class tracing:
    """``with tracing() as tracer:`` — install for the block, then restore.

    Restores whatever tracer (or absence of one) was active before, so
    nested/overlapping uses compose.
    """

    def __init__(self, tracer: Tracer | None = None):
        self._tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def trace_span(name: str, category: str = "", **args):
    """Span context manager against the installed tracer; no-op when disabled.

    The disabled path returns one shared, stateless object — safe to use
    in the tightest loops of the folded BNN.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, category, **args)


def traced(name: str | None = None, category: str = ""):
    """Decorator form of :func:`trace_span`.

    ``@traced()`` uses the function's qualified name; ``@traced("x")``
    overrides it.  Overhead when disabled is one global read per call.
    """

    def decorate(fn):
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a, **kw):
            tracer = _ACTIVE
            if tracer is None:
                return fn(*a, **kw)
            with tracer.span(span_name, category):
                return fn(*a, **kw)

        return wrapper

    return decorate


def count(name: str, delta: float = 1) -> None:
    """Counter increment against the installed tracer; no-op when disabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, delta)


def gauge(name: str, value: float) -> None:
    """Gauge sample against the installed tracer; no-op when disabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.gauge(name, value)


def instant(name: str, **args) -> None:
    """Instant marker against the installed tracer; no-op when disabled."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)
