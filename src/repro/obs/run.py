"""The ``repro trace`` harness: one traced cascade run, exported.

Builds the *real* datapath — a width-scaled folded CNV as the fast stage
(untrained: kernel timing does not depend on weight values), a Table III
host model as the accurate stage, a margin-reading DMU with its threshold
set so the target rerun ratio is realized — drives it through
:class:`repro.serve.CascadeServer` with a tracer installed, and reduces
the trace to the paper's two timing checks:

* **Eq. (1) overlap** — measured wall-clock seconds during which the
  ``serve.bnn`` and ``serve.host`` spans ran simultaneously.  Overlap
  near the smaller stage's busy time is what makes
  ``max(t_fp * R_rerun, t_bnn)`` (rather than the sum) the right model.
* **Eqs. (3)–(5) layer breakdown** — each binary layer's measured share
  of BNN time against its predicted share from the FINN cycle model at
  P = S = 1 (see :mod:`repro.obs.residuals`).

This module is deliberately *not* imported from ``repro.obs.__init__``:
it imports the serving/model stack, which itself imports ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .export import timeline_to_chrome, to_chrome_trace, trace_summary, write_chrome_trace
from .residuals import eq1_residual, eq345_layer_residuals
from .stats import format_span_summaries, span_overlap_seconds, summarize_spans
from .tracer import Tracer, tracing

__all__ = [
    "TraceRunConfig",
    "TraceRunReport",
    "run_traced_cascade",
    "format_trace_report",
    "write_simulated_trace",
]


@dataclass(frozen=True)
class TraceRunConfig:
    """One ``repro trace`` scenario (small enough to run in seconds)."""

    num_images: int = 256
    scale: float = 0.15            # CNV width scale (fast stage)
    host_scale: float = 0.25       # Model A width scale (accurate stage)
    backend: str | None = None     # binary-kernel backend; None = env/auto
    target_rerun_ratio: float = 0.30
    max_batch_size: int = 32
    batch_delay_s: float = 0.002
    num_host_workers: int = 1
    host_batch_size: int = 8
    inference_batch_size: int = 64
    seed: int = 0


@dataclass(frozen=True)
class TraceRunReport:
    """Everything a ``repro trace`` run produced."""

    config: TraceRunConfig
    tracer: Tracer
    summary: dict                       # span summaries + counters (JSON-able)
    overlap_seconds: float              # serve.bnn ∩ serve.host busy time
    bnn_busy_seconds: float
    host_busy_seconds: float
    layer_residuals: list[dict]         # Eqs. (3)-(5) predicted vs measured
    eq1: dict                           # Eq. (1) residual of the served run
    rerun_ratio: float
    completed: int
    wall_seconds: float

    def chrome_trace(self) -> dict:
        return to_chrome_trace(self.tracer)


def _margin_dmu(threshold: float):
    """DMU reading the sorted-score winning margin: sigmoid(4*(top1-top2))."""
    from ..core.dmu import DecisionMakingUnit

    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    return DecisionMakingUnit(weights, bias=0.0, threshold=threshold)


def run_traced_cascade(config: TraceRunConfig | None = None) -> TraceRunReport:
    """Run one traced serving session over the real folded datapath."""
    from ..data import normalize_to_pm1, synthetic_cifar10
    from ..models import build_finn_cnv, build_model_a
    from ..bnn.kernels.bench import cnv_binary_shapes
    from ..serve import CascadeServer, folded_bnn_scores_fn

    from ..bnn import fold_network

    config = config or TraceRunConfig()
    rng = np.random.default_rng(config.seed)
    net = build_finn_cnv(scale=config.scale, rng=rng)
    net.eval_mode()
    folded = fold_network(net, backend=config.backend)
    host = build_model_a(scale=config.host_scale, rng=np.random.default_rng(config.seed + 1))
    host.eval_mode()

    images = normalize_to_pm1(
        synthetic_cifar10(num_train=1, num_test=config.num_images, seed=config.seed).test.images
    )

    # Calibrate the DMU threshold so ~target_rerun_ratio of this stream is
    # flagged (the paper picks its threshold from a sweep the same way),
    # and warm the kernel autotuner outside the traced window.
    calib = images[: min(128, len(images))]
    dmu = _margin_dmu(0.5)
    confidence = dmu.confidence(folded.class_scores(calib, batch_size=config.inference_batch_size))
    threshold = float(np.quantile(confidence, config.target_rerun_ratio))
    dmu = _margin_dmu(threshold)

    with tracing() as tracer:
        server = CascadeServer(
            folded_bnn_scores_fn(folded, batch_size=config.inference_batch_size),
            dmu,
            host.predict_classes,
            controller=threshold,
            max_batch_size=config.max_batch_size,
            batch_delay_s=config.batch_delay_s,
            num_host_workers=config.num_host_workers,
            host_batch_size=config.host_batch_size,
        )
        with server:
            server.classify_many(iter(images))
            snapshot = server.snapshot()

    spans = tracer.spans
    summaries = summarize_spans(spans)
    bnn_busy = summaries["serve.bnn"].total_seconds if "serve.bnn" in summaries else 0.0
    host_busy = summaries["serve.host"].total_seconds if "serve.host" in summaries else 0.0
    overlap = span_overlap_seconds(spans, "serve.bnn", "serve.host")

    # Eqs. (3)-(5): measured per-layer BNN time vs the cycle-model share.
    layers = []
    for shape in cnv_binary_shapes(config.scale):
        name = "bnn." + shape["label"]
        if name in summaries:
            layers.append({**shape, "measured_seconds": summaries[name].total_seconds})
    layer_residuals = eq345_layer_residuals(layers) if layers else []

    # Eq. (1): stage times realized by this run, at the realized R_rerun.
    completed = snapshot.completed
    rerun_ratio = snapshot.rerun_ratio
    t_bnn = bnn_busy / completed if completed else float("nan")
    host_images = snapshot.rerun if snapshot.rerun else 1
    t_fp = host_busy / host_images
    eq1 = eq1_residual(
        measured_seconds_per_image=snapshot.wall_seconds / completed if completed else float("nan"),
        t_fp=t_fp,
        t_bnn=t_bnn,
        rerun_ratio=rerun_ratio,
        num_host_workers=config.num_host_workers,
    )

    return TraceRunReport(
        config=config,
        tracer=tracer,
        summary=trace_summary(tracer),
        overlap_seconds=overlap,
        bnn_busy_seconds=bnn_busy,
        host_busy_seconds=host_busy,
        layer_residuals=layer_residuals,
        eq1=eq1,
        rerun_ratio=rerun_ratio,
        completed=completed,
        wall_seconds=snapshot.wall_seconds,
    )


def format_trace_report(report: TraceRunReport) -> str:
    """Human-readable digest printed by ``repro trace``."""
    lines = [
        f"traced {report.completed} requests in {report.wall_seconds:.2f}s "
        f"({report.completed / report.wall_seconds:.0f} img/s), "
        f"R_rerun={report.rerun_ratio:.2f}",
        "",
        format_span_summaries(
            summarize_spans(report.tracer.spans),
            title="span summary (all threads)",
        ),
        "",
    ]
    floor = min(report.bnn_busy_seconds, report.host_busy_seconds)
    pct = report.overlap_seconds / floor * 100.0 if floor > 0 else 0.0
    lines.append(
        "Eq. (1) overlap check: BNN busy "
        f"{report.bnn_busy_seconds * 1e3:.1f} ms, host busy "
        f"{report.host_busy_seconds * 1e3:.1f} ms, simultaneous "
        f"{report.overlap_seconds * 1e3:.1f} ms "
        f"({pct:.0f}% of the smaller stage — 100% would be perfect pipelining)."
    )
    eq1 = report.eq1
    lines.append(
        f"Eq. (1) residual: predicted {eq1['predicted_seconds_per_image'] * 1e3:.2f} ms/img, "
        f"measured {eq1['measured_seconds_per_image'] * 1e3:.2f} ms/img "
        f"({eq1['relative_residual']:+.0%})."
    )
    if report.layer_residuals:
        lines.append("")
        lines.append("Eqs. (3)-(5) per-layer shares (predicted = cycle model at P=S=1):")
        header = f"  {'layer':<8}{'predicted':>10}{'measured':>10}{'residual':>10}"
        lines.append(header)
        for row in report.layer_residuals:
            lines.append(
                f"  {row['label']:<8}"
                f"{row['predicted_fraction']:>9.1%}"
                f"{row['measured_fraction']:>10.1%}"
                f"{row['residual_fraction']:>+10.1%}"
            )
    counters = report.summary["counters"]
    decisions = {k.split(".")[1]: int(v) for k, v in counters.items() if k.startswith("serve.")}
    if decisions:
        lines.append("")
        lines.append(
            "decisions: "
            + ", ".join(f"{name}={value}" for name, value in sorted(decisions.items()))
        )
    return "\n".join(lines)


def write_simulated_trace(report: TraceRunReport, path: str | Path) -> Path:
    """Write the *simulated* (Fig. 2) counterpart of the measured run.

    Feeds the measured per-image stage times and realized rerun ratio
    into :func:`repro.hetero.simulate_cascade` and exports its virtual
    timeline as a second Chrome trace — measured vs idealized overlap,
    side by side in the same viewer.
    """
    import json

    from ..hetero import FPGAExecutor, HostExecutor, simulate_cascade

    completed = max(1, report.completed)
    t_bnn = max(report.bnn_busy_seconds / completed, 1e-9)
    host_images = max(1, int(round(report.rerun_ratio * completed)))
    t_fp = max(report.host_busy_seconds / host_images, 1e-9)
    result = simulate_cascade(
        FPGAExecutor(interval_seconds=t_bnn),
        HostExecutor(seconds_per_image=t_fp),
        num_images=completed,
        batch_size=report.config.max_batch_size,
        rerun_ratio=report.rerun_ratio,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timeline_to_chrome(result.timeline), indent=1) + "\n")
    return path


# Re-exported for the CLI, which writes the measured trace after printing.
write_trace = write_chrome_trace
