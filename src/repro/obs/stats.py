"""Aggregation of trace data: histograms, span summaries, overlap.

Where :mod:`repro.obs.tracer` records raw events, this module turns them
into the numbers the paper's timing story is argued with: per-span-name
latency distributions (count/total/mean/percentiles), and the
BNN-vs-host *overlap* measurement that decides whether Eq. (1)'s
``max(t_fp * R_rerun, t_bnn)`` — rather than the sum — is the right
model of the cascade.  Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tracer import Span

__all__ = [
    "Histogram",
    "SpanSummary",
    "percentile",
    "summarize_spans",
    "span_overlap_seconds",
    "format_span_summaries",
]


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile of *values* (q in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac


class Histogram:
    """Streaming value collector with percentile summaries.

    Keeps raw samples (traces here are short-lived benchmark runs, not
    long-running daemons), so percentiles are exact.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def summary(self) -> dict:
        """count/total/mean/min/p50/p90/p99/max of the samples so far."""
        if not self._values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": len(self._values),
            "total": sum(self._values),
            "mean": sum(self._values) / len(self._values),
            "min": min(self._values),
            "p50": percentile(self._values, 50),
            "p90": percentile(self._values, 90),
            "p99": percentile(self._values, 99),
            "max": max(self._values),
        }


@dataclass(frozen=True)
class SpanSummary:
    """Latency distribution of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    max_seconds: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "max_seconds": self.max_seconds,
        }


def summarize_spans(spans: list[Span]) -> dict[str, SpanSummary]:
    """Group spans by name; summaries sorted by descending total time."""
    groups: dict[str, list[float]] = {}
    for span in spans:
        groups.setdefault(span.name, []).append(span.duration)
    summaries = {
        name: SpanSummary(
            name=name,
            count=len(durations),
            total_seconds=sum(durations),
            mean_seconds=sum(durations) / len(durations),
            p50_seconds=percentile(durations, 50),
            p95_seconds=percentile(durations, 95),
            max_seconds=max(durations),
        )
        for name, durations in groups.items()
    }
    return dict(
        sorted(summaries.items(), key=lambda kv: kv[1].total_seconds, reverse=True)
    )


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping (start, end) intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def span_overlap_seconds(spans: list[Span], name_a: str, name_b: str) -> float:
    """Wall-clock seconds during which *name_a* and *name_b* both ran.

    Spans of each name are unioned first (multiple worker threads count
    once), so the result is the true simultaneous-busy time — the
    quantity Eq. (1) assumes is ``min(t_fp * R_rerun, t_bnn)`` per image
    when the cascade overlaps perfectly.
    """
    a = _merge_intervals([(s.start, s.end) for s in spans if s.name == name_a])
    b = _merge_intervals([(s.start, s.end) for s in spans if s.name == name_b])
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def format_span_summaries(summaries: dict[str, SpanSummary], title: str = "span summary") -> str:
    """Plain-text table of span summaries (stdlib-only formatter)."""
    headers = ["span", "count", "total (ms)", "mean (ms)", "p50 (ms)", "p95 (ms)", "max (ms)"]
    rows = [
        [
            s.name,
            str(s.count),
            f"{s.total_seconds * 1e3:.2f}",
            f"{s.mean_seconds * 1e3:.3f}",
            f"{s.p50_seconds * 1e3:.3f}",
            f"{s.p95_seconds * 1e3:.3f}",
            f"{s.max_seconds * 1e3:.3f}",
        ]
        for s in summaries.values()
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    for r in rows:
        lines.append("  ".join(v.ljust(widths[c]) for c, v in enumerate(r)).rstrip())
    return "\n".join(lines)
