"""Predicted-vs-measured residuals for the paper's timing equations.

Two predictions bracket the cascade:

* **Eq. (1)** ``t_multi = max(t_fp * R_rerun, t_bnn)`` predicts the
  *system* interval from the stage times and the realized rerun ratio.
  :func:`eq1_residual` reports how far a measured serving run sits from
  that bound (positive residual = slower than predicted, the expected
  direction: Eq. (1) ignores batching quantization, queueing and thread
  scheduling).
* **Eqs. (3)–(5)** (FINN's cycle model) predict *where time goes inside
  the BNN*: at full unfold (P = S = 1) a layer's cycle count is exactly
  its single-bit MAC count — ``OD * K*K*ID * OH * OW`` for conv (Eq. 3),
  ``OD * ID`` for FC (Eq. 4) — and FPS is clock over the pipeline
  maximum (Eq. 5).  Our software kernels share no clock with an FPGA, so
  the comparable quantity is the *share* of time per layer:
  :func:`eq345_layer_residuals` compares each binary layer's predicted
  work fraction against its measured time fraction.  A layer whose
  measured share far exceeds its op share is where the software datapath
  diverges from the hardware cost model (e.g. GEMM shape effects).

Stdlib-only except for :mod:`repro.core.analytic`, which owns the
Eq. (1) closed form.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["eq1_residual", "ladder_eq1_residual", "eq345_layer_residuals"]


def eq1_residual(
    measured_seconds_per_image: float,
    t_fp: float,
    t_bnn: float,
    rerun_ratio: float,
    num_host_workers: int = 1,
) -> dict:
    """Measured serving interval vs the Eq. (1) prediction.

    The host term is divided by the worker-pool size: Eq. (1) models a
    single host executor, and a pool drains flagged images that much
    faster.  Returns a JSON-serializable dict with the prediction, the
    measurement, the absolute residual (seconds/image) and the relative
    residual (fraction of the prediction).
    """
    from ..core.analytic import multi_precision_interval

    if num_host_workers < 1:
        raise ValueError("num_host_workers must be >= 1")
    predicted = multi_precision_interval(t_fp / num_host_workers, t_bnn, rerun_ratio)
    residual = measured_seconds_per_image - predicted
    return {
        "predicted_seconds_per_image": predicted,
        "measured_seconds_per_image": measured_seconds_per_image,
        "residual_seconds_per_image": residual,
        "relative_residual": residual / predicted,
        "rerun_ratio": rerun_ratio,
        "t_fp": t_fp,
        "t_bnn": t_bnn,
        "num_host_workers": num_host_workers,
    }


def ladder_eq1_residual(
    measured_seconds_per_image: float,
    stage_times: Sequence[float],
    forward_ratios: Sequence[float],
    stage_names: Sequence[str] | None = None,
    num_host_workers: int = 1,
) -> dict:
    """Measured ladder interval vs the Eq. (1N) prediction, per stage.

    The N-stage generalization of :func:`eq1_residual` (``docs/LADDER.md``):
    with reach fractions ``R_i = prod_{j<i} r_j`` the prediction is
    ``max_i t_i * R_i``, and the per-stage busy terms say *which rung*
    the prediction makes the bottleneck.  The final (host) stage time is
    divided by the worker-pool size, as in the 2-stage form.  Returns a
    JSON-serializable dict whose ``stages`` list carries each rung's
    reach, busy seconds/image and share of the predicted bound.
    """
    from ..core.analytic import ladder_reach_fractions

    if num_host_workers < 1:
        raise ValueError("num_host_workers must be >= 1")
    stage_times = [float(t) for t in stage_times]
    if len(stage_times) < 2:
        raise ValueError("a ladder needs at least 2 stages")
    if len(forward_ratios) != len(stage_times) - 1:
        raise ValueError("need exactly one forward ratio per hop")
    if any(t <= 0 for t in stage_times):
        raise ValueError("stage times must be positive")
    if stage_names is None:
        stage_names = [f"stage{i}" for i in range(len(stage_times))]
    if len(stage_names) != len(stage_times):
        raise ValueError("need one name per stage")
    effective = list(stage_times)
    effective[-1] = effective[-1] / num_host_workers
    reach = ladder_reach_fractions(forward_ratios)
    busy = [t * w for t, w in zip(effective, reach)]
    predicted = max(busy)
    bottleneck = max(range(len(busy)), key=busy.__getitem__)
    residual = measured_seconds_per_image - predicted
    return {
        "predicted_seconds_per_image": predicted,
        "measured_seconds_per_image": measured_seconds_per_image,
        "residual_seconds_per_image": residual,
        "relative_residual": residual / predicted,
        "bottleneck_stage": stage_names[bottleneck],
        "num_host_workers": num_host_workers,
        "forward_ratios": [float(r) for r in forward_ratios],
        "stages": [
            {
                "name": name,
                "t_image": t,
                "reach_fraction": w,
                "busy_seconds_per_image": b,
                "share_of_bound": b / predicted if predicted > 0 else 0.0,
            }
            for name, t, w, b in zip(stage_names, effective, reach, busy)
        ],
    }


def eq345_layer_residuals(layers: list[dict]) -> list[dict]:
    """Per-layer predicted work share (Eqs. 3–4) vs measured time share.

    Each input dict describes one binary layer:

    * ``label`` — layer name (``conv2`` ... ``fc3``);
    * ``rows_per_image`` — output pixels OH*OW (1 for FC);
    * ``n_out`` — output channels/features OD;
    * ``n_bits`` — fan-in K*K*ID (conv) or ID (fc);
    * ``measured_seconds`` — measured time of the layer's matmul.

    ``n_out * n_bits * rows_per_image`` is the Eq. (3)/(4) cycle count at
    P = S = 1, so the predicted fraction is each layer's share of total
    single-bit MAC work.  Returns one dict per layer with both fractions
    and the residual (measured − predicted), plus the op count feeding
    Eq. (5)'s ``FPS = clock / max(CC)`` bottleneck argument.
    """
    for layer in layers:
        for key in ("label", "rows_per_image", "n_out", "n_bits", "measured_seconds"):
            if key not in layer:
                raise ValueError(f"layer entry missing {key!r}: {layer}")
        if layer["measured_seconds"] < 0:
            raise ValueError("measured_seconds must be >= 0")
    total_ops = sum(l["n_out"] * l["n_bits"] * l["rows_per_image"] for l in layers)
    total_seconds = sum(l["measured_seconds"] for l in layers)
    if total_ops <= 0 or total_seconds <= 0:
        raise ValueError("need positive total work and total measured time")
    out = []
    for layer in layers:
        ops = layer["n_out"] * layer["n_bits"] * layer["rows_per_image"]
        predicted = ops / total_ops
        measured = layer["measured_seconds"] / total_seconds
        out.append(
            {
                "label": layer["label"],
                "ops": ops,
                "predicted_fraction": predicted,
                "measured_fraction": measured,
                "residual_fraction": measured - predicted,
                "measured_seconds": layer["measured_seconds"],
            }
        )
    return out
