"""Table V — heterogeneous multi-precision classification.

For each host model the cascade runs functionally on the synthetic test
set (trained scaled networks), producing the realized rerun mask, the
multi-precision accuracy, and the host accuracy on the flagged (hard)
subset.  Throughput then comes from the heterogeneous pipeline simulator
fed with the full-width analytical timings (chosen FINN configuration for
the FPGA, calibrated ARM model for the host), using that realized rerun
mask — exactly the composition of the paper's experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import MultiPrecisionPipeline, estimate
from ..core.report import render_table
from ..data import normalize_to_pm1
from ..hetero import FPGAExecutor, HostExecutor, simulate_cascade
from ..host import analyze_network, paper_calibrated_model
from ..models import build_model_a, build_model_b, build_model_c
from .finn_config import FinnDesignPoint, chosen_configuration
from .workbench import Workbench

__all__ = ["Table5Row", "Table5Result", "run"]

PAPER_TABLE5 = {
    "Model A": (0.825, 90.82, 0.65),
    "Model B": (0.860, 14.00, 0.79),
    "Model C": (0.870, 11.98, 0.83),
}

_BUILDERS = {
    "Model A": ("model_a", build_model_a),
    "Model B": ("model_b", build_model_b),
    "Model C": ("model_c", build_model_c),
}


@dataclass(frozen=True)
class Table5Row:
    model: str
    accuracy: float
    images_per_second: float
    rerun_ratio: float
    host_subset_accuracy: float
    bnn_accuracy: float
    eq1_images_per_second: float
    eq2_accuracy: float
    paper_accuracy: float
    paper_images_per_second: float
    paper_subset_accuracy: float


@dataclass
class Table5Result:
    rows: list[Table5Row]
    design: FinnDesignPoint
    batch_size: int

    def row(self, model: str) -> Table5Row:
        for r in self.rows:
            if r.model == model:
                return r
        raise KeyError(model)

    def format(self) -> str:
        return render_table(
            [
                "combination",
                "accuracy",
                "img/s",
                "rerun %",
                "subset acc",
                "Eq1 img/s",
                "Eq2 acc",
                "paper acc",
                "paper img/s",
            ],
            [
                [
                    f"{r.model} & FINN",
                    f"{100 * r.accuracy:.1f}%",
                    f"{r.images_per_second:.2f}",
                    f"{100 * r.rerun_ratio:.1f}",
                    f"{100 * r.host_subset_accuracy:.1f}%",
                    f"{r.eq1_images_per_second:.2f}",
                    f"{100 * r.eq2_accuracy:.1f}%",
                    f"{100 * r.paper_accuracy:.1f}%",
                    f"{r.paper_images_per_second:.2f}",
                ]
                for r in self.rows
            ],
            title="Table V: heterogeneous multi-precision classification",
        )


def run(
    workbench: Workbench,
    design: FinnDesignPoint | None = None,
    batch_size: int = 100,
) -> Table5Result:
    design = design or chosen_configuration()
    host_model = paper_calibrated_model()
    fpga = FPGAExecutor.from_pipeline(design.performance_partitioned)
    folded = workbench.folded_bnn
    splits = workbench.splits
    images = splits.test.images
    labels = splits.test.labels
    bnn_images = normalize_to_pm1(images)

    rows = []
    for label, (key, builder) in _BUILDERS.items():
        pipeline = MultiPrecisionPipeline(folded, workbench.dmu, workbench.host_net(key))
        result = pipeline.classify(images, bnn_images=bnn_images)

        t_fp = host_model.seconds_per_image(analyze_network(builder(scale=1.0)))
        host = HostExecutor(seconds_per_image=t_fp)
        sim = simulate_cascade(
            fpga,
            host,
            num_images=images.shape[0],
            batch_size=batch_size,
            rerun_mask=result.rerun_mask,
        )

        cats = workbench.dmu.categorize(workbench.test_scores)
        analytic = estimate(
            t_fp=t_fp,
            t_bnn=fpga.interval_seconds,
            acc_bnn=result.bnn_accuracy(labels),
            acc_fp=result.host_subset_accuracy(labels),
            r_rerun=result.rerun_ratio,
            r_rerun_err=cats.rerun_err_ratio,
        )
        rows.append(
            Table5Row(
                model=label,
                accuracy=result.accuracy(labels),
                images_per_second=sim.images_per_second,
                rerun_ratio=result.rerun_ratio,
                host_subset_accuracy=result.host_subset_accuracy(labels),
                bnn_accuracy=result.bnn_accuracy(labels),
                eq1_images_per_second=analytic.images_per_second,
                eq2_accuracy=analytic.accuracy,
                paper_accuracy=PAPER_TABLE5[label][0],
                paper_images_per_second=PAPER_TABLE5[label][1],
                paper_subset_accuracy=PAPER_TABLE5[label][2],
            )
        )
    return Table5Result(rows=rows, design=design, batch_size=batch_size)
