"""Ablation studies for the design choices DESIGN.md calls out.

* Batch-size sweep (the paper's qualitative claim in Section III).
* Eq. (1) validation against the event simulator across a rerun grid.
* DMU input-feature variants: sorted scores (ours) vs raw scores vs
  top1-top2 margin.
* Rate balancing vs uniform folding at equal total PE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import DecisionMakingUnit, train_dmu
from ..core.analytic import multi_precision_interval
from ..core.report import render_table
from ..data import ScoreDataset
from ..finn import Engine, ZC702_CLOCK_HZ, balance_network, finn_cnv_specs
from ..hetero import FPGAExecutor, HostExecutor, compare_with_eq1, simulate_cascade
from .workbench import Workbench

__all__ = [
    "BatchSizeRow",
    "run_batch_size_sweep",
    "Eq1ValidationRow",
    "run_eq1_validation",
    "DMUVariantRow",
    "run_dmu_variants",
    "BalanceAblationResult",
    "run_balance_ablation",
]


# -- batch size --------------------------------------------------------------
@dataclass(frozen=True)
class BatchSizeRow:
    batch_size: int
    images_per_second: float
    average_batch_latency: float


def run_batch_size_sweep(
    t_fp: float = 1 / 29.68,
    t_bnn: float = 1 / 430.15,
    rerun_ratio: float = 0.251,
    num_images: int = 4000,
    batch_sizes: tuple[int, ...] = (25, 50, 100, 200, 400, 800),
) -> list[BatchSizeRow]:
    """Throughput is batch-size-insensitive; latency grows with batch."""
    fpga = FPGAExecutor(interval_seconds=t_bnn, fill_seconds=5 * t_bnn)
    host = HostExecutor(seconds_per_image=t_fp)
    rows = []
    for bs in batch_sizes:
        sim = simulate_cascade(fpga, host, num_images, bs, rerun_ratio=rerun_ratio)
        rows.append(
            BatchSizeRow(
                batch_size=bs,
                images_per_second=sim.images_per_second,
                average_batch_latency=sim.average_batch_latency(),
            )
        )
    return rows


# -- Eq. (1) validation --------------------------------------------------------
@dataclass(frozen=True)
class Eq1ValidationRow:
    rerun_ratio: float
    analytic_fps: float
    simulated_fps: float
    relative_error: float


def run_eq1_validation(
    t_fp: float = 1 / 29.68,
    t_bnn: float = 1 / 430.15,
    rerun_ratios: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.251, 0.4, 0.6, 0.8, 1.0),
    num_images: int = 4000,
    batch_size: int = 100,
) -> list[Eq1ValidationRow]:
    """Eq. (1) is a tight optimistic bound across the rerun-ratio range."""
    fpga = FPGAExecutor(interval_seconds=t_bnn, fill_seconds=5 * t_bnn)
    host = HostExecutor(seconds_per_image=t_fp)
    rows = []
    for r in rerun_ratios:
        sim = simulate_cascade(fpga, host, num_images, batch_size, rerun_ratio=r)
        cmp = compare_with_eq1(sim, t_fp, t_bnn)
        rows.append(
            Eq1ValidationRow(
                rerun_ratio=r,
                analytic_fps=cmp.analytic_fps,
                simulated_fps=cmp.simulated_fps,
                relative_error=cmp.relative_error,
            )
        )
    return rows


# -- DMU input features -------------------------------------------------------
@dataclass(frozen=True)
class DMUVariantRow:
    variant: str
    dmu_accuracy: float
    rerun_ratio: float
    max_achievable_accuracy: float


def _margin_dmu(train: ScoreDataset, threshold: float) -> DecisionMakingUnit:
    """Closed-form top1-top2 margin confidence (no training needed).

    Encoded in the linear DMU form over sorted scores: w = (a, -a, 0...),
    with a fitted scale so the sigmoid saturates sensibly.
    """
    sorted_scores = -np.sort(-train.scores, axis=1)
    margins = sorted_scores[:, 0] - sorted_scores[:, 1]
    scale = 2.0 / (margins.std() + 1e-9)
    weights = np.zeros(train.scores.shape[1])
    weights[0] = scale
    weights[1] = -scale
    bias = -scale * float(np.median(margins))
    return DecisionMakingUnit(weights, bias, threshold)


def run_dmu_variants(workbench: Workbench, threshold: float = 0.84) -> list[DMUVariantRow]:
    train = workbench.train_scores
    test = workbench.test_scores

    raw = train_dmu(train, threshold=threshold, rng=np.random.default_rng(0))
    raw_unsorted = _train_raw(train)
    margin = _margin_dmu(train, threshold)

    rows = []
    for name, dmu in (
        ("sorted scores (paper-style trained)", raw),
        ("raw scores (no sort)", raw_unsorted),
        ("top1-top2 margin (untrained)", margin),
    ):
        cats = dmu.categorize(test, threshold)
        rows.append(
            DMUVariantRow(
                variant=name,
                dmu_accuracy=cats.dmu_accuracy,
                rerun_ratio=cats.rerun_ratio,
                max_achievable_accuracy=cats.max_achievable_accuracy,
            )
        )
    return rows


def _train_raw(train: ScoreDataset) -> DecisionMakingUnit:
    """Train a logistic layer directly on unsorted (raw) scores."""
    x = train.scores
    mean, std = x.mean(axis=0), x.std(axis=0) + 1e-8
    xs = (x - mean) / std
    y = train.correct
    w = np.zeros(x.shape[1])
    b = 0.0
    lr = 0.3
    for _ in range(300):
        z = xs @ w + b
        p = 1.0 / (1.0 + np.exp(-z))
        grad_w = xs.T @ (p - y) / len(y)
        grad_b = float((p - y).mean())
        w -= lr * grad_w
        b -= lr * grad_b
    return DecisionMakingUnit(w / std, b - float((w * mean / std).sum()), 0.84, sort_inputs=False)


# -- rate balancing ------------------------------------------------------------
@dataclass(frozen=True)
class BalanceAblationResult:
    balanced_fps: float
    uniform_fps: float
    balanced_total_pe: int
    uniform_total_pe: int

    @property
    def speedup(self) -> float:
        return self.balanced_fps / self.uniform_fps


def run_balance_ablation(target_cycles: int = 232_000) -> BalanceAblationResult:
    """Balanced P/S per layer vs the same folding for every layer.

    The uniform configuration spends comparable PEs but is bottlenecked by
    its heaviest layer — quantifying why the paper rate-balances.
    """
    specs = finn_cnv_specs()
    balanced = balance_network(specs, target_cycles)

    # Uniform folding: give every layer the same (P, S) drawn from the
    # balanced design's *average* compute budget.
    avg_ps = int(round(np.mean([e.pe * e.simd for e in balanced.engines])))
    uniform_engines = []
    for spec in specs:
        best = None
        for p in (1, 2, 4, 8, 16, 32, 64):
            if spec.weight_rows % p:
                continue
            for s in (1, 2, 4, 8, 16):
                if spec.fan_in % s:
                    continue
                if p * s <= avg_ps and (best is None or p * s > best.pe * best.simd):
                    best = Engine(spec, p, s)
        uniform_engines.append(best)
    uniform_cc = max(e.cycles_per_image for e in uniform_engines)

    return BalanceAblationResult(
        balanced_fps=ZC702_CLOCK_HZ / balanced.bottleneck_cycles,
        uniform_fps=ZC702_CLOCK_HZ / uniform_cc,
        balanced_total_pe=balanced.total_pe,
        uniform_total_pe=sum(e.pe for e in uniform_engines),
    )


def format_ablations(
    batch_rows: list[BatchSizeRow],
    eq1_rows: list[Eq1ValidationRow],
) -> str:
    """Combined plain-text report of the parameter-only ablations."""
    a = render_table(
        ["batch", "img/s", "avg batch latency (s)"],
        [[r.batch_size, f"{r.images_per_second:.1f}", f"{r.average_batch_latency:.3f}"] for r in batch_rows],
        title="Ablation: batch size",
    )
    b = render_table(
        ["R_rerun", "Eq.(1) img/s", "simulated img/s", "rel err"],
        [
            [f"{r.rerun_ratio:.3f}", f"{r.analytic_fps:.1f}", f"{r.simulated_fps:.1f}", f"{r.relative_error:+.3f}"]
            for r in eq1_rows
        ],
        title="Ablation: Eq. (1) vs event simulation",
    )
    return a + "\n\n" + b
