"""The paper's two future-work directions, quantified.

1. **ARMv8 host** — "using the multi-precision concept on higher-end
   heterogeneous devices that incorporate ARMv8 processors with active
   NEON engines": re-evaluate the host rates and the Eq. (1) cascade
   throughput on a Cortex-A53-class CPU model.
2. **Mixed precision on the FPGA** — sweep the CNV network across a
   (weight bits, activation bits) ladder under the bit-serial cost model
   and report throughput/BRAM at the paper's working parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analytic import multi_precision_interval
from ..core.report import render_table
from ..finn import (
    XC7Z020,
    ZC702_CLOCK_HZ,
    balance_network,
    evaluate_pipeline,
    finn_cnv_specs,
    network_resources,
)
from ..finn.mixed_precision import precision_ladder
from ..host import ARM_CORTEX_A53_NEON, HostPerformanceModel, analyze_network, paper_calibrated_model
from ..models import build_model_a, build_model_b, build_model_c

__all__ = [
    "ArmV8Row",
    "run_armv8_projection",
    "MixedPrecisionRow",
    "run_mixed_precision_sweep",
]

_BUILDERS = {
    "Model A": build_model_a,
    "Model B": build_model_b,
    "Model C": build_model_c,
}


@dataclass(frozen=True)
class ArmV8Row:
    model: str
    a9_images_per_second: float
    a53_images_per_second: float
    a9_cascade_fps: float
    a53_cascade_fps: float

    @property
    def host_speedup(self) -> float:
        return self.a53_images_per_second / self.a9_images_per_second


def run_armv8_projection(
    rerun_ratio: float = 0.251, t_bnn: float = 1 / 430.15
) -> list[ArmV8Row]:
    """Project Table IV/V rates onto an ARMv8+NEON host.

    The saturating-efficiency parameters calibrated on the A9 are reused;
    only the peak-FLOPs term changes — a conservative projection since
    NEON also vectorizes the packing-bound small-GEMM regime.
    """
    a9 = paper_calibrated_model()
    a53 = HostPerformanceModel(ARM_CORTEX_A53_NEON, a9.eff_max, a9.half_sat)
    rows = []
    for name, builder in _BUILDERS.items():
        cost = analyze_network(builder(scale=1.0))
        t_a9 = a9.seconds_per_image(cost)
        t_a53 = a53.seconds_per_image(cost)
        rows.append(
            ArmV8Row(
                model=name,
                a9_images_per_second=1 / t_a9,
                a53_images_per_second=1 / t_a53,
                a9_cascade_fps=1 / multi_precision_interval(t_a9, t_bnn, rerun_ratio),
                a53_cascade_fps=1 / multi_precision_interval(t_a53, t_bnn, rerun_ratio),
            )
        )
    return rows


def format_armv8(rows: list[ArmV8Row]) -> str:
    return render_table(
        ["model", "A9 img/s", "A53+NEON img/s", "A9 cascade", "A53 cascade"],
        [
            [
                r.model,
                f"{r.a9_images_per_second:.2f}",
                f"{r.a53_images_per_second:.2f}",
                f"{r.a9_cascade_fps:.1f}",
                f"{r.a53_cascade_fps:.1f}",
            ]
            for r in rows
        ],
        title="Future work: ARMv8 (NEON) host projection at R_rerun = 25.1%",
    )


@dataclass(frozen=True)
class MixedPrecisionRow:
    label: str
    weight_bits: int
    activation_bits: int
    obtained_fps: float
    bram_pct: float
    fits_device: bool


def run_mixed_precision_sweep(target_cycles: int = 232_000) -> list[MixedPrecisionRow]:
    """Sweep the CNV network over a precision ladder at fixed target latency."""
    rows = []
    for label, specs in precision_ladder(finn_cnv_specs()).items():
        w = specs[1].weight_bits
        a = specs[1].activation_bits
        balanced = balance_network(specs, target_cycles)
        perf = evaluate_pipeline(balanced, ZC702_CLOCK_HZ, partitioned=True)
        res = network_resources(list(balanced.engines), XC7Z020, partitioned=True)
        rows.append(
            MixedPrecisionRow(
                label=label,
                weight_bits=w,
                activation_bits=a,
                obtained_fps=perf.obtained_fps,
                bram_pct=100.0 * res.bram_utilization,
                fits_device=res.fits(),
            )
        )
    return rows


def format_mixed_precision(rows: list[MixedPrecisionRow]) -> str:
    return render_table(
        ["precision", "obtained img/s", "BRAM %", "fits XC7Z020"],
        [
            [r.label, f"{r.obtained_fps:.0f}", f"{r.bram_pct:.1f}", "yes" if r.fits_device else "NO"]
            for r in rows
        ],
        title="Future work: mixed-precision CNV on the ZC702 (bit-serial model)",
    )
