"""Fig. 5 and Table II — DMU threshold behaviour and the chosen setting.

Fig. 5: Softmax-layer accuracy and the F̄S / FS̄ fractions across
thresholds 0.5-1.0 on the *training* dataset (as in the paper).
Table II: the category fractions at the deployed threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import DMUCategories, threshold_sweep
from ..core.report import render_table
from .workbench import Workbench

__all__ = ["Fig5Result", "Table2Result", "run_fig5", "run_table2"]


@dataclass
class Fig5Result:
    thresholds: list[float]
    categories: list[DMUCategories]

    def format(self) -> str:
        rows = [
            [
                f"{c.threshold:.2f}",
                f"{100 * c.dmu_accuracy:.1f}",
                f"{100 * c.fbar_s:.1f}",
                f"{100 * c.f_sbar:.1f}",
                f"{100 * c.rerun_ratio:.1f}",
            ]
            for c in self.categories
        ]
        return render_table(
            ["threshold", "DMU acc %", "F̄S %", "FS̄ %", "rerun %"],
            rows,
            title="Fig. 5: Softmax accuracy and F̄S / FS̄ vs threshold (training data)",
        )

    def chart(self) -> str:
        """ASCII rendition of Fig. 5's three series."""
        from ..core.ascii_chart import line_chart

        return line_chart(
            self.thresholds,
            {
                "DMU accuracy %": [100 * c.dmu_accuracy for c in self.categories],
                "F̄S %": [100 * c.fbar_s for c in self.categories],
                "FS̄ %": [100 * c.f_sbar for c in self.categories],
            },
            title="Fig. 5: DMU behaviour vs Softmax threshold",
            x_label="threshold", y_label="percent",
        )


@dataclass
class Table2Result:
    train: DMUCategories
    test: DMUCategories

    def format(self) -> str:
        def row(name, c):
            return [
                name,
                f"{c.threshold:.2f}",
                f"{100 * c.fs:.1f}",
                f"{100 * c.fbar_sbar:.1f}",
                f"{100 * c.fbar_s:.1f}",
                f"{100 * c.f_sbar:.1f}",
                f"{100 * c.max_achievable_accuracy:.1f}",
            ]

        return render_table(
            ["split", "thr", "FS %", "F̄S̄ %", "F̄S %", "FS̄ %", "max acc %"],
            [row("train", self.train), row("test", self.test)],
            title="Table II: Softmax threshold setting and obtained category fractions",
        )


def run_fig5(workbench: Workbench, thresholds: np.ndarray | None = None) -> Fig5Result:
    thresholds = (
        thresholds if thresholds is not None else np.arange(0.5, 1.0001, 0.05)
    )
    categories = threshold_sweep(workbench.dmu, workbench.train_scores, thresholds)
    return Fig5Result(thresholds=[float(t) for t in thresholds], categories=categories)


def run_table2(workbench: Workbench, threshold: float | None = None) -> Table2Result:
    # Default to the *deployed* threshold (after any target-rerun-ratio
    # selection), matching what Table V's cascade actually uses.
    thr = workbench.dmu.threshold if threshold is None else threshold
    return Table2Result(
        train=workbench.dmu.categorize(workbench.train_scores, thr),
        test=workbench.dmu.categorize(workbench.test_scores, thr),
    )
