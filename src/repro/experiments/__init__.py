"""Experiment runners — one per table/figure of the paper's evaluation.

| Paper item | Runner                                    |
|------------|-------------------------------------------|
| Table I    | :func:`repro.experiments.table1.run`      |
| Fig. 3     | :func:`repro.experiments.fig34.run_fig3`  |
| Fig. 4     | :func:`repro.experiments.fig34.run_fig4`  |
| Fig. 5     | :func:`repro.experiments.fig5_table2.run_fig5` |
| Table II   | :func:`repro.experiments.fig5_table2.run_table2` |
| Table III  | :func:`repro.experiments.table3.run`      |
| Table IV   | :func:`repro.experiments.table4.run`      |
| Table V    | :func:`repro.experiments.table5.run`      |
| ablations  | :mod:`repro.experiments.ablations`        |

Trained artefacts are shared through :class:`repro.experiments.Workbench`.
"""

from . import ablations, fig34, fig5_table2, future_work, report_all, table1, table3, table4, table5
from .finn_config import (
    FinnDesignPoint,
    PAPER_ANCHOR_FPS,
    chosen_configuration,
    standard_sweep,
)
from .workbench import HOST_MODEL_NAMES, Workbench, WorkbenchConfig

__all__ = [
    "Workbench",
    "WorkbenchConfig",
    "HOST_MODEL_NAMES",
    "FinnDesignPoint",
    "chosen_configuration",
    "standard_sweep",
    "PAPER_ANCHOR_FPS",
    "table1",
    "fig34",
    "fig5_table2",
    "table3",
    "table4",
    "table5",
    "ablations",
    "future_work",
    "report_all",
]
