"""Shared trained-model workbench for the experiment runners.

Tables II, IV and V and Fig. 5 all need the same trained artefacts: the
binarized CNV network, host Models A/B/C, and a DMU trained on the BNN's
training-set scores.  Training them in pure numpy takes minutes, so the
workbench trains once per configuration and caches all weights on disk
(``.workbench_cache/`` by default); every experiment then loads the same
artefacts, exactly as the paper reuses one FINN bitstream and one set of
Caffe models across its experiments.

Scale policy (DESIGN.md §5): functional accuracy experiments run
width-scaled networks on the synthetic dataset; all throughput numbers
come from the full-width analytical models in :mod:`repro.finn` and
:mod:`repro.host`.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..bnn import FoldedBNN, clip_weights, fold_network
from ..core import DecisionMakingUnit, train_dmu
from ..data import (
    LabeledSplits,
    ScoreDataset,
    build_score_dataset,
    normalize_to_pm1,
    synthetic_cifar10,
)
from ..models import build_finn_cnv, build_model_a, build_model_b, build_model_c
from ..nn import Adam, Sequential, SoftmaxCrossEntropy, SquaredHinge, Trainer

__all__ = ["WorkbenchConfig", "Workbench", "HOST_MODEL_NAMES"]

HOST_MODEL_NAMES = ("model_a", "model_b", "model_c")


@dataclass(frozen=True)
class WorkbenchConfig:
    """Training configuration for one workbench instance."""

    num_train: int = 3000
    num_test: int = 1000
    bnn_scale: float = 0.15
    host_scale: float = 0.25
    bnn_epochs: int = 12
    host_epochs: int = 20
    batch_size: int = 64
    bnn_lr: float = 0.003
    host_lr: float = 0.001
    lr_half_life: int = 8           # epochs between LR halvings (0 = constant)
    host_dropout: bool = False      # scaled-width hosts converge faster without
    dmu_threshold: float = 0.84
    #: When set, override ``dmu_threshold`` with the sweep threshold whose
    #: training-set rerun ratio is closest to this target — the paper's own
    #: methodology for picking the operating point ("DMU can be set to
    #: different thresholds to adjust accuracy vs. speed").
    target_rerun_ratio: float | None = None
    seed: int = 0

    def cache_key(self) -> str:
        """Hash of the fields that affect *trained weights* only.

        DMU threshold selection is post-training metadata, so changing it
        must not invalidate the cached networks.
        """
        payload = asdict(self)
        payload.pop("dmu_threshold")
        payload.pop("target_rerun_ratio")
        return hashlib.sha1(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


@dataclass
class _TrainedModel:
    net: Sequential
    test_accuracy: float


class Workbench:
    """Train-once container for all functional experiment artefacts."""

    def __init__(self, config: WorkbenchConfig | None = None, cache_dir: str | Path | None = None):
        self.config = config or WorkbenchConfig()
        root = Path(cache_dir) if cache_dir is not None else Path(".workbench_cache")
        self.cache_dir = root / self.config.cache_key()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._splits: LabeledSplits | None = None
        self._bnn: _TrainedModel | None = None
        self._hosts: dict[str, _TrainedModel] = {}
        self._dmu: DecisionMakingUnit | None = None
        self._train_scores: ScoreDataset | None = None
        self._test_scores: ScoreDataset | None = None

    # -- dataset ------------------------------------------------------------
    @property
    def splits(self) -> LabeledSplits:
        if self._splits is None:
            self._splits = synthetic_cifar10(
                num_train=self.config.num_train,
                num_test=self.config.num_test,
                seed=self.config.seed,
            )
        return self._splits

    # -- training helpers ---------------------------------------------------
    def _lr_schedule(self, base_lr: float):
        half_life = self.config.lr_half_life
        if half_life <= 0:
            return None
        return lambda epoch: base_lr * (0.5 ** (epoch // half_life))

    # -- cache helpers ------------------------------------------------------
    def _cache_path(self, name: str) -> Path:
        return self.cache_dir / f"{name}.npz"

    def _read_cache(self, path: Path, *keys: str) -> dict[str, np.ndarray] | None:
        """Load an ``.npz`` cache entry, treating any corruption as a miss.

        Truncated/garbled archives raise ``zipfile.BadZipFile`` or
        ``OSError`` and entries written by an incompatible build miss keys;
        all of it means "retrain", never "crash".  Unreadable files are
        removed so the retrained artefact can overwrite them cleanly.
        """
        if not path.exists():
            return None
        try:
            with np.load(path) as npz:
                data = {k: npz[k] for k in (keys or npz.files)}
        except (zipfile.BadZipFile, OSError, KeyError, ValueError, EOFError):
            path.unlink(missing_ok=True)
            return None
        return data

    def _save_net(self, name: str, net: Sequential, accuracy: float) -> None:
        state = net.state_dict()
        state["__test_accuracy__"] = np.array(accuracy)
        np.savez_compressed(self._cache_path(name), **state)

    def _load_net(self, name: str, net: Sequential) -> float | None:
        data = self._read_cache(self._cache_path(name))
        if data is None or "__test_accuracy__" not in data:
            return None
        accuracy = float(data.pop("__test_accuracy__"))
        try:
            net.load_state_dict(data)
        except (KeyError, ValueError):
            return None  # stale cache from an incompatible build
        return accuracy

    # -- BNN -----------------------------------------------------------------
    def _train_bnn(self) -> _TrainedModel:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        net = build_finn_cnv(scale=cfg.bnn_scale, rng=rng)
        cached = self._load_net("finn_cnv", net)
        if cached is None:
            splits = self.splits
            x = normalize_to_pm1(splits.train.images)
            trainer = Trainer(
                net,
                SquaredHinge(),
                Adam(net.params(), lr=cfg.bnn_lr, post_update=clip_weights),
                rng=rng,
                lr_schedule=self._lr_schedule(cfg.bnn_lr),
            )
            trainer.fit(x, splits.train.labels, epochs=cfg.bnn_epochs, batch_size=cfg.batch_size)
            net.eval_mode()
            cached = self._bnn_accuracy(net)
            self._save_net("finn_cnv", net, cached)
        net.eval_mode()
        return _TrainedModel(net, cached)

    def _bnn_accuracy(self, net: Sequential) -> float:
        splits = self.splits
        x = normalize_to_pm1(splits.test.images)
        scores = net.predict(x)[:, :10]
        return float((scores.argmax(axis=1) == splits.test.labels).mean())

    @property
    def bnn_net(self) -> Sequential:
        if self._bnn is None:
            self._bnn = self._train_bnn()
        return self._bnn.net

    @property
    def bnn_accuracy(self) -> float:
        if self._bnn is None:
            self._bnn = self._train_bnn()
        return self._bnn.test_accuracy

    @property
    def folded_bnn(self) -> FoldedBNN:
        return fold_network(self.bnn_net, num_classes=10)

    # -- host models ----------------------------------------------------------
    def _train_host(self, name: str) -> _TrainedModel:
        cfg = self.config
        builders = {
            "model_a": build_model_a,
            "model_b": build_model_b,
            "model_c": build_model_c,
        }
        rng = np.random.default_rng(cfg.seed + 1 + list(builders).index(name))
        kwargs = {} if name == "model_a" else {"dropout": cfg.host_dropout}
        net = builders[name](scale=cfg.host_scale, rng=rng, **kwargs)
        cached = self._load_net(name, net)
        if cached is None:
            splits = self.splits
            trainer = Trainer(
                net,
                SoftmaxCrossEntropy(),
                Adam(net.params(), lr=cfg.host_lr),
                rng=rng,
                lr_schedule=self._lr_schedule(cfg.host_lr),
            )
            trainer.fit(
                splits.train.images,
                splits.train.labels,
                epochs=cfg.host_epochs,
                batch_size=cfg.batch_size,
                x_val=splits.test.images,
                y_val=splits.test.labels,
            )
            net.eval_mode()
            cached = trainer.evaluate(splits.test.images, splits.test.labels)
            self._save_net(name, net, cached)
        net.eval_mode()
        return _TrainedModel(net, cached)

    def host_net(self, name: str) -> Sequential:
        if name not in HOST_MODEL_NAMES:
            raise KeyError(f"unknown host model {name!r}")
        if name not in self._hosts:
            self._hosts[name] = self._train_host(name)
        return self._hosts[name].net

    def host_accuracy(self, name: str) -> float:
        self.host_net(name)
        return self._hosts[name].test_accuracy

    # -- score datasets & DMU ---------------------------------------------------
    def _scores_for(self, name: str, images: np.ndarray, labels: np.ndarray) -> ScoreDataset:
        """BNN scores for a split, cached on disk (inference is minutes)."""
        path = self._cache_path(f"scores_{name}")
        data = self._read_cache(path, "scores")
        if data is not None and data["scores"].shape[0] == images.shape[0]:
            return build_score_dataset(data["scores"], labels)
        scores = self.folded_bnn.class_scores(normalize_to_pm1(images))
        np.savez_compressed(path, scores=scores)
        return build_score_dataset(scores, labels)

    @property
    def train_scores(self) -> ScoreDataset:
        if self._train_scores is None:
            splits = self.splits
            self._train_scores = self._scores_for(
                "train", splits.train.images, splits.train.labels
            )
        return self._train_scores

    @property
    def test_scores(self) -> ScoreDataset:
        if self._test_scores is None:
            splits = self.splits
            self._test_scores = self._scores_for(
                "test", splits.test.images, splits.test.labels
            )
        return self._test_scores

    @property
    def dmu(self) -> DecisionMakingUnit:
        if self._dmu is None:
            path = self._cache_path("dmu")
            data = self._read_cache(path, "weights", "bias")
            if data is not None:
                self._dmu = DecisionMakingUnit(
                    data["weights"], float(data["bias"]), self.config.dmu_threshold
                )
            else:
                self._dmu = train_dmu(
                    self.train_scores,
                    threshold=self.config.dmu_threshold,
                    rng=np.random.default_rng(self.config.seed + 100),
                )
                np.savez_compressed(
                    path, weights=self._dmu.weights, bias=np.array(self._dmu.bias)
                )
            if self.config.target_rerun_ratio is not None:
                self._dmu.threshold = self._select_threshold(
                    self._dmu, self.config.target_rerun_ratio
                )
        return self._dmu

    def _select_threshold(self, dmu: DecisionMakingUnit, target: float) -> float:
        """Threshold whose training-set rerun ratio is closest to target."""
        from ..core import threshold_sweep

        candidates = threshold_sweep(dmu, self.train_scores, np.linspace(0.05, 0.99, 95))
        best = min(candidates, key=lambda c: abs(c.rerun_ratio - target))
        return best.threshold

    def prepare_all(self) -> None:
        """Train/load everything (useful to warm the cache up front)."""
        _ = self.bnn_accuracy
        for name in HOST_MODEL_NAMES:
            _ = self.host_accuracy(name)
        _ = self.dmu
        _ = self.test_scores
