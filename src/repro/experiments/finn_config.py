"""Selection of the paper's working FINN configuration.

Section III-A: "we select the configuration with the lowest BRAM
utilisation to release resources for other hardware blocks; the
implementation with 32 PEs, reaching 430 images/second and utilising 65%
of the ZC702 board BRAMs, is used through the rest of this article".

We reproduce the selection rule rather than hard-coding the paper's
numbers: sweep the standard design points, keep the block-partitioned
allocations, and pick the cheapest configuration that still reaches the
paper's real-time anchor (430 img/s within a small tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..finn import (
    BalanceResult,
    NetworkResources,
    PipelinePerformance,
    XC7Z020,
    ZC702_CLOCK_HZ,
    evaluate_pipeline,
    finn_cnv_specs,
    network_resources,
    sweep_targets,
)

__all__ = ["FinnDesignPoint", "standard_sweep", "chosen_configuration", "PAPER_ANCHOR_FPS"]

#: The paper's working-configuration throughput anchor.
PAPER_ANCHOR_FPS = 430.0

#: Throughput design targets swept in Figs. 3-4 (img/s).
STANDARD_TARGETS = [95.0, 210.0, 430.0, 600.0, 1200.0, 1800.0, 3000.0]


@dataclass(frozen=True)
class FinnDesignPoint:
    """One design point of the Fig. 3/4 sweep."""

    balance: BalanceResult
    performance_naive: PipelinePerformance
    performance_partitioned: PipelinePerformance
    resources_naive: NetworkResources
    resources_partitioned: NetworkResources

    @property
    def total_pe(self) -> int:
        return self.balance.total_pe


def standard_sweep(clock_hz: float = ZC702_CLOCK_HZ) -> list[FinnDesignPoint]:
    """Evaluate the standard design targets on the ZC702."""
    specs = finn_cnv_specs()
    points = []
    for result in sweep_targets(specs, STANDARD_TARGETS, clock_hz):
        engines = list(result.engines)
        points.append(
            FinnDesignPoint(
                balance=result,
                performance_naive=evaluate_pipeline(result, clock_hz, partitioned=False),
                performance_partitioned=evaluate_pipeline(result, clock_hz, partitioned=True),
                resources_naive=network_resources(engines, XC7Z020, partitioned=False),
                resources_partitioned=network_resources(engines, XC7Z020, partitioned=True),
            )
        )
    return points


def chosen_configuration(
    min_fps: float = PAPER_ANCHOR_FPS,
    tolerance: float = 0.06,
    clock_hz: float = ZC702_CLOCK_HZ,
) -> FinnDesignPoint:
    """The paper's selection rule: cheapest partitioned-BRAM design point
    whose obtained throughput still covers ``min_fps`` (within tolerance).
    """
    candidates = [
        p
        for p in standard_sweep(clock_hz)
        if p.performance_partitioned.obtained_fps >= min_fps * (1.0 - tolerance)
    ]
    if not candidates:
        raise ValueError(f"no design point reaches {min_fps} img/s")
    return min(candidates, key=lambda p: p.resources_partitioned.total_brams)
