"""Table III — the three host network topologies.

Summarizes the full-width Models A/B/C exactly as built by
:mod:`repro.models.host_models`, with parameter and FLOP counts from the
host cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import render_table
from ..host import analyze_network
from ..models import build_model_a, build_model_b, build_model_c
from ..nn import Conv2D, Dense

__all__ = ["Table3Row", "Table3Result", "run"]

_BUILDERS = {
    "Model A": build_model_a,
    "Model B": build_model_b,
    "Model C": build_model_c,
}


@dataclass(frozen=True)
class Table3Row:
    model: str
    conv_layers: int
    dense_layers: int
    conv_channels: list[int]
    params: int
    mflops_per_image: float


@dataclass
class Table3Result:
    rows: list[Table3Row]

    def format(self) -> str:
        return render_table(
            ["model", "#conv", "#fc", "conv channels", "params", "MFLOP/img"],
            [
                [
                    r.model,
                    r.conv_layers,
                    r.dense_layers,
                    "-".join(str(c) for c in r.conv_channels),
                    r.params,
                    f"{r.mflops_per_image:.1f}",
                ]
                for r in self.rows
            ],
            title="Table III: host networks (full width)",
        )


def run() -> Table3Result:
    rows = []
    for name, builder in _BUILDERS.items():
        net = builder(scale=1.0)
        convs = [l for l in net if isinstance(l, Conv2D)]
        denses = [l for l in net if isinstance(l, Dense)]
        cost = analyze_network(net)
        rows.append(
            Table3Row(
                model=name,
                conv_layers=len(convs),
                dense_layers=len(denses),
                conv_channels=[c.out_channels for c in convs],
                params=net.num_params(),
                mflops_per_image=cost.total_flops / 1e6,
            )
        )
    return Table3Result(rows=rows)
