"""Table IV — standalone (non-heterogeneous) classification performance.

Accuracy comes from the trained (width-scaled) networks on the synthetic
test set; images/sec comes from the analytical models at full width: the
calibrated ARM host model for Models A/B/C and the chosen FINN
configuration for the FPGA (DESIGN.md §5 scale policy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import render_table
from ..host import analyze_network, paper_calibrated_model
from ..models import build_model_a, build_model_b, build_model_c
from .finn_config import FinnDesignPoint, chosen_configuration
from .workbench import Workbench

__all__ = ["Table4Row", "Table4Result", "run"]

PAPER_TABLE4 = {
    "Model A": (0.814, 29.68),
    "Model B": (0.893, 3.63),
    "Model C": (0.907, 3.09),
    "FINN (FPGA)": (0.785, 430.15),
}


@dataclass(frozen=True)
class Table4Row:
    model: str
    accuracy: float
    images_per_second: float
    paper_accuracy: float
    paper_images_per_second: float


@dataclass
class Table4Result:
    rows: list[Table4Row]
    design: FinnDesignPoint

    def row(self, model: str) -> Table4Row:
        for r in self.rows:
            if r.model == model:
                return r
        raise KeyError(model)

    def format(self) -> str:
        return render_table(
            ["model", "accuracy", "img/s", "paper acc", "paper img/s"],
            [
                [
                    r.model,
                    f"{100 * r.accuracy:.1f}%",
                    f"{r.images_per_second:.2f}",
                    f"{100 * r.paper_accuracy:.1f}%",
                    f"{r.paper_images_per_second:.2f}",
                ]
                for r in self.rows
            ],
            title="Table IV: standalone CIFAR-10 classification (host models vs FINN)",
        )


def run(workbench: Workbench, design: FinnDesignPoint | None = None) -> Table4Result:
    design = design or chosen_configuration()
    host_model = paper_calibrated_model()
    builders = {
        "Model A": ("model_a", build_model_a),
        "Model B": ("model_b", build_model_b),
        "Model C": ("model_c", build_model_c),
    }
    rows = []
    for label, (key, builder) in builders.items():
        rate = host_model.images_per_second(analyze_network(builder(scale=1.0)))
        rows.append(
            Table4Row(
                model=label,
                accuracy=workbench.host_accuracy(key),
                images_per_second=rate,
                paper_accuracy=PAPER_TABLE4[label][0],
                paper_images_per_second=PAPER_TABLE4[label][1],
            )
        )
    rows.append(
        Table4Row(
            model="FINN (FPGA)",
            accuracy=workbench.bnn_accuracy,
            images_per_second=design.performance_partitioned.obtained_fps,
            paper_accuracy=PAPER_TABLE4["FINN (FPGA)"][0],
            paper_images_per_second=PAPER_TABLE4["FINN (FPGA)"][1],
        )
    )
    return Table4Result(rows=rows, design=design)
