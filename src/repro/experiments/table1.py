"""Table I — the FINN engines of the CNV network.

Reproduces the layer stack plus the per-engine feature sizes of Section
III-A (weight geometry, threshold widths) and the cycle counts of the
chosen configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import render_table
from ..finn import finn_cnv_specs
from .finn_config import FinnDesignPoint, chosen_configuration

__all__ = ["Table1Row", "Table1Result", "run"]


@dataclass(frozen=True)
class Table1Row:
    layer: str
    description: str
    weight_rows: int
    weight_cols: int
    total_weight_bits: int
    threshold_bits: int | None
    pe: int
    simd: int
    cycles: int


@dataclass
class Table1Result:
    rows: list[Table1Row]
    design: FinnDesignPoint

    def format(self) -> str:
        table_rows = [
            [
                r.layer,
                r.description,
                f"{r.weight_rows}x{r.weight_cols}",
                r.total_weight_bits,
                r.threshold_bits if r.threshold_bits is not None else "-",
                r.pe,
                r.simd,
                r.cycles,
            ]
            for r in self.rows
        ]
        return render_table(
            ["engine", "layer", "weights (OD x fan-in)", "weight bits", "thr bits", "P", "S", "CC/img"],
            table_rows,
            title="Table I: FINN engines for CIFAR-10 (chosen configuration)",
        )


def run(design: FinnDesignPoint | None = None) -> Table1Result:
    design = design or chosen_configuration()
    rows = []
    for spec, engine in zip(finn_cnv_specs(), design.balance.engines):
        rows.append(
            Table1Row(
                layer=spec.name,
                description=spec.describe().split(": ", 1)[1],
                weight_rows=spec.weight_rows,
                weight_cols=spec.fan_in,
                total_weight_bits=spec.total_weight_bits,
                threshold_bits=spec.threshold_bits,
                pe=engine.pe,
                simd=engine.simd,
                cycles=engine.cycles_per_image,
            )
        )
    return Table1Result(rows=rows, design=design)
