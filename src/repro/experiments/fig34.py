"""Figures 3 and 4 — performance and area versus degree of parallelism.

Fig. 3: expected vs obtained img/s and BRAM/LUT utilization for balanced
CIFAR-10 configurations under naive BRAM allocation.  Fig. 4: the same
sweep with block array partitioning (BRAM drops, low-PE configurations
slow slightly, high-PE ones retain performance).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ascii_chart import line_chart
from ..core.report import render_table
from .finn_config import FinnDesignPoint, standard_sweep

__all__ = ["ScalingRow", "ScalingResult", "run_fig3", "run_fig4"]


@dataclass(frozen=True)
class ScalingRow:
    total_pe: int
    expected_fps: float
    obtained_fps: float
    bram_pct: float
    lut_pct: float


@dataclass
class ScalingResult:
    rows: list[ScalingRow]
    partitioned: bool

    def format(self) -> str:
        which = "Fig. 4 (block-partitioned BRAM)" if self.partitioned else "Fig. 3 (naive BRAM)"
        return render_table(
            ["total PE", "expected img/s", "obtained img/s", "BRAM_18K %", "LUT %"],
            [
                [
                    r.total_pe,
                    f"{r.expected_fps:.0f}",
                    f"{r.obtained_fps:.0f}",
                    f"{r.bram_pct:.1f}",
                    f"{r.lut_pct:.1f}",
                ]
                for r in self.rows
            ],
            title=f"{which}: performance and area vs total PE count",
        )

    def chart(self) -> str:
        """ASCII rendition of the figure's two panels."""
        x = [r.total_pe for r in self.rows]
        top = line_chart(
            x,
            {"expected": [r.expected_fps for r in self.rows],
             "obtained": [r.obtained_fps for r in self.rows]},
            title="images/sec vs total PE count",
            x_label="total PE", y_label="img/s",
        )
        bottom = line_chart(
            x,
            {"BRAM_18K %": [r.bram_pct for r in self.rows],
             "LUT %": [r.lut_pct for r in self.rows]},
            title="utilization vs total PE count",
            x_label="total PE", y_label="%",
        )
        return top + "\n\n" + bottom


def _rows(points: list[FinnDesignPoint], partitioned: bool) -> list[ScalingRow]:
    rows = []
    for p in sorted(points, key=lambda q: q.total_pe):
        perf = p.performance_partitioned if partitioned else p.performance_naive
        res = p.resources_partitioned if partitioned else p.resources_naive
        rows.append(
            ScalingRow(
                total_pe=p.total_pe,
                expected_fps=perf.expected_fps,
                obtained_fps=perf.obtained_fps,
                bram_pct=100.0 * res.bram_utilization,
                lut_pct=100.0 * res.lut_utilization,
            )
        )
    return rows


def run_fig3(points: list[FinnDesignPoint] | None = None) -> ScalingResult:
    points = points if points is not None else standard_sweep()
    return ScalingResult(rows=_rows(points, partitioned=False), partitioned=False)


def run_fig4(points: list[FinnDesignPoint] | None = None) -> ScalingResult:
    points = points if points is not None else standard_sweep()
    return ScalingResult(rows=_rows(points, partitioned=True), partitioned=True)
