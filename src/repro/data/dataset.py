"""Dataset containers and the top-level synthetic CIFAR-10 entry point."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .synthetic import CLASS_NAMES, SyntheticConfig, generate_images

__all__ = ["Dataset", "LabeledSplits", "synthetic_cifar10", "normalize_to_pm1"]


@dataclass
class Dataset:
    """Images (N, 3, H, W) in [0, 1] with integer labels (N,)."""

    images: np.ndarray
    labels: np.ndarray
    class_names: tuple[str, ...] = CLASS_NAMES

    def __post_init__(self):
        self.images = np.asarray(self.images)
        self.labels = np.asarray(self.labels)
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError("images and labels must have matching length")
        if self.images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def subset(self, indices: np.ndarray) -> "Dataset":
        """View of the selected samples (labels/classes preserved)."""
        indices = np.asarray(indices)
        return Dataset(self.images[indices], self.labels[indices], self.class_names)

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield (images, labels) minibatches; shuffled when rng is given."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if rng is not None:
            order = rng.permutation(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]

    def class_distribution(self) -> np.ndarray:
        """Per-class sample counts."""
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass
class LabeledSplits:
    """Train/test split pair, as CIFAR-10 ships (50000/10000)."""

    train: Dataset
    test: Dataset
    config: SyntheticConfig = field(default_factory=SyntheticConfig)


def synthetic_cifar10(
    num_train: int = 6000,
    num_test: int = 2000,
    config: SyntheticConfig | None = None,
    seed: int = 0,
) -> LabeledSplits:
    """Generate a class-balanced synthetic CIFAR-10 substitute.

    The paper uses the real CIFAR-10 (50000 train / 10000 test); the
    default sizes here are scaled for numpy-speed training while keeping
    the same 10-class balance.  See DESIGN.md for the substitution
    rationale.
    """
    if num_train <= 0 or num_test <= 0:
        raise ValueError("split sizes must be positive")
    cfg = config or SyntheticConfig()
    rng = np.random.default_rng(seed)

    def balanced_labels(n: int) -> np.ndarray:
        reps = -(-n // 10)  # ceil
        labels = np.tile(np.arange(10), reps)[:n]
        return rng.permutation(labels)

    y_train = balanced_labels(num_train)
    y_test = balanced_labels(num_test)
    x_train = generate_images(y_train, rng, cfg)
    x_test = generate_images(y_test, rng, cfg)
    return LabeledSplits(Dataset(x_train, y_train), Dataset(x_test, y_test), cfg)


def normalize_to_pm1(images: np.ndarray) -> np.ndarray:
    """Map [0, 1] images to [-1, +1], the input range BinaryNet expects."""
    return images * 2.0 - 1.0
