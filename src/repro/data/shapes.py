"""Rasterized geometric primitives used by the synthetic dataset.

Each primitive returns a soft (anti-aliased) occupancy mask in [0, 1] over
an ``size x size`` pixel grid with coordinates normalized to [0, 1].
"""

from __future__ import annotations

import numpy as np

__all__ = ["grid", "ellipse_mask", "box_mask", "triangle_mask", "line_mask", "soft_edge"]

_EDGE = 40.0  # sigmoid sharpness of mask boundaries, in 1/normalized-units


def grid(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Pixel-center coordinate grids (yy, xx) in [0, 1]."""
    coords = (np.arange(size) + 0.5) / size
    return np.meshgrid(coords, coords, indexing="ij")


def soft_edge(signed_distance: np.ndarray, sharpness: float = _EDGE) -> np.ndarray:
    """Map a signed distance field (positive inside) to a soft mask."""
    return 1.0 / (1.0 + np.exp(-sharpness * signed_distance))


def ellipse_mask(
    size: int, cx: float, cy: float, rx: float, ry: float, angle: float = 0.0
) -> np.ndarray:
    """Soft mask of a rotated ellipse; radii in normalized units."""
    yy, xx = grid(size)
    dx, dy = xx - cx, yy - cy
    c, s = np.cos(angle), np.sin(angle)
    u = c * dx + s * dy
    v = -s * dx + c * dy
    dist = 1.0 - np.sqrt((u / max(rx, 1e-6)) ** 2 + (v / max(ry, 1e-6)) ** 2)
    return soft_edge(dist * min(rx, ry))


def box_mask(
    size: int, cx: float, cy: float, half_w: float, half_h: float, angle: float = 0.0
) -> np.ndarray:
    """Soft mask of a rotated axis box."""
    yy, xx = grid(size)
    dx, dy = xx - cx, yy - cy
    c, s = np.cos(angle), np.sin(angle)
    u = c * dx + s * dy
    v = -s * dx + c * dy
    dist = np.minimum(half_w - np.abs(u), half_h - np.abs(v))
    return soft_edge(dist)


def triangle_mask(size: int, p0, p1, p2) -> np.ndarray:
    """Soft mask of the triangle with vertices p_i = (x, y) in [0, 1]."""
    yy, xx = grid(size)

    def half_plane(a, b):
        # signed distance to the directed edge a->b (positive on the left)
        ex, ey = b[0] - a[0], b[1] - a[1]
        norm = np.hypot(ex, ey) + 1e-9
        return ((xx - a[0]) * ey - (yy - a[1]) * ex) / norm

    d0 = half_plane(p0, p1)
    d1 = half_plane(p1, p2)
    d2 = half_plane(p2, p0)
    # Consistent orientation: flip if the triangle is wound the other way.
    area = (p1[0] - p0[0]) * (p2[1] - p0[1]) - (p2[0] - p0[0]) * (p1[1] - p0[1])
    if area < 0:
        d0, d1, d2 = -d0, -d1, -d2
    dist = np.minimum(np.minimum(d0, d1), d2)
    return soft_edge(dist)


def line_mask(size: int, x0, y0, x1, y1, width: float) -> np.ndarray:
    """Soft mask of a thick line segment."""
    yy, xx = grid(size)
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy + 1e-12
    t = np.clip(((xx - x0) * dx + (yy - y0) * dy) / length_sq, 0.0, 1.0)
    px, py = x0 + t * dx, y0 + t * dy
    dist = width - np.hypot(xx - px, yy - py)
    return soft_edge(dist)
