"""Dataset substrate: synthetic CIFAR-10 substitute, augmentation, score datasets."""

from .augment import (
    Augmenter,
    random_brightness,
    random_contrast,
    random_horizontal_flip,
    random_shift,
)
from .cifar_io import load_cifar10_binary, read_cifar_batch
from .dataset import Dataset, LabeledSplits, normalize_to_pm1, synthetic_cifar10
from .score_dataset import ScoreDataset, build_score_dataset
from .synthetic import CLASS_NAMES, SyntheticConfig, generate_images, render_class_image

__all__ = [
    "Augmenter",
    "random_horizontal_flip",
    "random_shift",
    "random_brightness",
    "random_contrast",
    "Dataset",
    "LabeledSplits",
    "load_cifar10_binary",
    "read_cifar_batch",
    "synthetic_cifar10",
    "normalize_to_pm1",
    "ScoreDataset",
    "build_score_dataset",
    "CLASS_NAMES",
    "SyntheticConfig",
    "generate_images",
    "render_class_image",
]
