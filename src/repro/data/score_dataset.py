"""Dataset of classifier output scores for DMU training.

The paper trains the DMU on "a new dataset composed of the FINN output
scores and its identification result (1 indicating success and 0
failure)" — this module builds exactly that from any classifier's logits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScoreDataset", "build_score_dataset"]


@dataclass
class ScoreDataset:
    """BNN class scores with per-image correctness labels.

    Attributes
    ----------
    scores:
        (N, num_classes) raw classifier scores.
    correct:
        (N,) binary array — 1 when the classifier's argmax matched the
        true label.
    predicted, true_labels:
        The underlying predictions and ground truth, kept so downstream
        code can compute the FS/F̄S̄/F̄S/FS̄ taxonomy.
    """

    scores: np.ndarray
    correct: np.ndarray
    predicted: np.ndarray
    true_labels: np.ndarray

    def __post_init__(self):
        n = self.scores.shape[0]
        for name in ("correct", "predicted", "true_labels"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},)")

    def __len__(self) -> int:
        return int(self.scores.shape[0])

    @property
    def classifier_accuracy(self) -> float:
        """Accuracy of the underlying classifier on this set."""
        return float(self.correct.mean()) if len(self) else 0.0


def build_score_dataset(scores: np.ndarray, true_labels: np.ndarray) -> ScoreDataset:
    """Label each score vector with whether its argmax is correct."""
    scores = np.asarray(scores, dtype=np.float64)
    true_labels = np.asarray(true_labels)
    if scores.ndim != 2:
        raise ValueError("scores must be (N, num_classes)")
    if true_labels.shape != (scores.shape[0],):
        raise ValueError("true_labels must align with scores")
    predicted = scores.argmax(axis=1)
    correct = (predicted == true_labels).astype(np.int64)
    return ScoreDataset(scores, correct, predicted, true_labels)
