"""Loader for the real CIFAR-10 binary distribution.

This environment is offline, so the repository's experiments default to
the synthetic substitute — but the loader below reads the canonical
``cifar-10-batches-bin`` layout (https://www.cs.toronto.edu/~kriz/cifar.html,
the URL the paper cites), letting anyone with the dataset on disk run
every experiment on real data:

    each record: 1 label byte + 3072 pixel bytes (R, G, B planes, 32x32)
    data_batch_1.bin ... data_batch_5.bin  (10000 records each)
    test_batch.bin                          (10000 records)

Usage::

    splits = load_cifar10_binary("/path/to/cifar-10-batches-bin")
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .dataset import Dataset, LabeledSplits
from .synthetic import CLASS_NAMES

__all__ = ["RECORD_BYTES", "read_cifar_batch", "load_cifar10_binary"]

_IMAGE_BYTES = 3 * 32 * 32
RECORD_BYTES = 1 + _IMAGE_BYTES

_TRAIN_FILES = tuple(f"data_batch_{i}.bin" for i in range(1, 6))
_TEST_FILE = "test_batch.bin"


def read_cifar_batch(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Read one CIFAR-10 binary batch file.

    Returns
    -------
    (images, labels)
        Images (N, 3, 32, 32) float64 in [0, 1]; labels (N,) int64.
    """
    raw = np.fromfile(str(path), dtype=np.uint8)
    if raw.size == 0 or raw.size % RECORD_BYTES != 0:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of the "
            f"{RECORD_BYTES}-byte CIFAR-10 record"
        )
    records = raw.reshape(-1, RECORD_BYTES)
    labels = records[:, 0].astype(np.int64)
    if labels.max() > 9:
        raise ValueError(f"{path}: label byte exceeds 9 — not a CIFAR-10 batch")
    images = records[:, 1:].reshape(-1, 3, 32, 32).astype(np.float64) / 255.0
    return images, labels


def load_cifar10_binary(
    directory: str | Path,
    num_train: int | None = None,
    num_test: int | None = None,
) -> LabeledSplits:
    """Load the full train/test split from a ``cifar-10-batches-bin`` dir.

    Parameters
    ----------
    directory:
        Folder containing ``data_batch_*.bin`` and ``test_batch.bin``.
    num_train, num_test:
        Optional truncation (paper-style subset runs, e.g. "the first
        1000 test images").
    """
    directory = Path(directory)
    missing = [f for f in (*_TRAIN_FILES, _TEST_FILE) if not (directory / f).exists()]
    if missing:
        raise FileNotFoundError(
            f"{directory} is missing CIFAR-10 batch files: {', '.join(missing)}"
        )
    train_parts = [read_cifar_batch(directory / f) for f in _TRAIN_FILES]
    x_train = np.concatenate([p[0] for p in train_parts])
    y_train = np.concatenate([p[1] for p in train_parts])
    x_test, y_test = read_cifar_batch(directory / _TEST_FILE)

    if num_train is not None:
        x_train, y_train = x_train[:num_train], y_train[:num_train]
    if num_test is not None:
        x_test, y_test = x_test[:num_test], y_test[:num_test]
    return LabeledSplits(
        train=Dataset(x_train, y_train, CLASS_NAMES),
        test=Dataset(x_test, y_test, CLASS_NAMES),
    )
