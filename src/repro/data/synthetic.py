"""Synthetic CIFAR-10-like dataset.

The real CIFAR-10 cannot be downloaded in this offline environment, so the
reproduction uses a procedurally generated 10-class 32x32 RGB dataset with
the same tensor layout and the statistical properties the paper's mechanism
relies on:

* classes are learnable but not trivially separable (noise, jitter,
  occluders, per-class sub-modes);
* three deliberately confusable pairs — cat/dog, deer/horse,
  automobile/truck — produce a hard subset, so a binarized network loses
  measurable accuracy relative to float networks and per-image confidence
  carries signal for the DMU;
* class-conditional colour statistics overlap by a controllable amount.

Class names mirror CIFAR-10: airplane, automobile, bird, cat, deer, dog,
frog, horse, ship, truck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .shapes import box_mask, ellipse_mask, line_mask, triangle_mask

__all__ = ["SyntheticConfig", "CLASS_NAMES", "render_class_image", "generate_images"]

CLASS_NAMES = (
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs controlling dataset difficulty.

    Parameters
    ----------
    image_size:
        Side length in pixels (CIFAR-10 is 32).
    noise:
        Standard deviation of additive Gaussian pixel noise.
    jitter:
        Scale of random translation/size/orientation perturbations.
    color_overlap:
        0 = classes keep their canonical colours, 1 = colours are fully
        randomized (removing colour as a cue).
    occluder_prob:
        Probability of pasting a random occluding patch over the object.
    """

    image_size: int = 32
    noise: float = 0.14
    jitter: float = 0.16
    color_overlap: float = 0.45
    occluder_prob: float = 0.35

    def __post_init__(self):
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")
        if not 0.0 <= self.color_overlap <= 1.0:
            raise ValueError("color_overlap must be in [0, 1]")
        if self.noise < 0 or self.jitter < 0:
            raise ValueError("noise and jitter must be non-negative")
        if not 0.0 <= self.occluder_prob <= 1.0:
            raise ValueError("occluder_prob must be in [0, 1]")


def _paint(img: np.ndarray, mask: np.ndarray, color: np.ndarray) -> None:
    """Alpha-composite ``color`` over ``img`` using ``mask`` in place."""
    img *= 1.0 - mask
    img += mask * color[:, None, None]


def _color(rng: np.random.Generator, base: tuple[float, float, float], overlap: float) -> np.ndarray:
    """Sample a colour near ``base``, blended toward uniform by ``overlap``."""
    base_arr = np.asarray(base)
    jittered = np.clip(base_arr + rng.normal(0, 0.08, size=3), 0.0, 1.0)
    random_color = rng.uniform(0.05, 0.95, size=3)
    return (1.0 - overlap) * jittered + overlap * random_color


def _sky_background(size: int, rng: np.random.Generator, overlap: float) -> np.ndarray:
    top = _color(rng, (0.55, 0.70, 0.90), overlap * 0.5)
    bottom = _color(rng, (0.75, 0.82, 0.95), overlap * 0.5)
    ramp = np.linspace(0.0, 1.0, size).reshape(1, size, 1)
    img = top[:, None, None] * (1 - ramp) + bottom[:, None, None] * ramp
    return np.broadcast_to(img, (3, size, size)).copy()


def _ground_background(size: int, rng: np.random.Generator, overlap: float) -> np.ndarray:
    sky = _color(rng, (0.60, 0.75, 0.90), overlap * 0.5)
    ground = _color(rng, (0.35, 0.45, 0.25), overlap * 0.5)
    horizon = 0.55 + 0.1 * rng.standard_normal()
    rows = (np.arange(size) + 0.5) / size
    weight = 1.0 / (1.0 + np.exp(-30 * (rows - horizon)))
    weight = weight.reshape(1, size, 1)
    img = sky[:, None, None] * (1 - weight) + ground[:, None, None] * weight
    return np.broadcast_to(img, (3, size, size)).copy()


def _sea_background(size: int, rng: np.random.Generator, overlap: float) -> np.ndarray:
    sky = _color(rng, (0.65, 0.78, 0.92), overlap * 0.5)
    sea = _color(rng, (0.15, 0.30, 0.55), overlap * 0.5)
    horizon = 0.55 + 0.08 * rng.standard_normal()
    rows = (np.arange(size) + 0.5) / size
    weight = 1.0 / (1.0 + np.exp(-40 * (rows - horizon)))
    weight = weight.reshape(1, size, 1)
    img = sky[:, None, None] * (1 - weight) + sea[:, None, None] * weight
    return np.broadcast_to(img, (3, size, size)).copy()


def _legs(size, cx, cy, body_w, leg_len, width, rng, jitter):
    mask = np.zeros((size, size))
    for offset in (-0.8, -0.35, 0.35, 0.8):
        x = cx + offset * body_w + jitter * 0.02 * rng.standard_normal()
        mask = np.maximum(mask, line_mask(size, x, cy, x, cy + leg_len, width))
    return mask


def render_class_image(
    label: int, rng: np.random.Generator, config: SyntheticConfig | None = None
) -> np.ndarray:
    """Render one (3, S, S) float image in [0, 1] for ``label``."""
    cfg = config or SyntheticConfig()
    size = cfg.image_size
    j = cfg.jitter
    ov = cfg.color_overlap

    def jit(scale=1.0):
        return j * scale * rng.standard_normal()

    cx = 0.5 + jit(0.5)
    cy = 0.5 + jit(0.5)
    scale = 1.0 + jit(0.8)
    scale = float(np.clip(scale, 0.6, 1.5))

    if label == 0:  # airplane: fuselage + swept wings on sky
        img = _sky_background(size, rng, ov)
        body_color = _color(rng, (0.75, 0.75, 0.78), ov)
        angle = jit(1.2)
        _paint(img, ellipse_mask(size, cx, cy, 0.30 * scale, 0.06 * scale, angle), body_color)
        wing = triangle_mask(
            size,
            (cx - 0.05, cy),
            (cx + 0.1, cy - 0.28 * scale),
            (cx + 0.16, cy),
        )
        wing2 = triangle_mask(
            size,
            (cx - 0.05, cy),
            (cx + 0.1, cy + 0.28 * scale),
            (cx + 0.16, cy),
        )
        _paint(img, np.maximum(wing, wing2), body_color * 0.9)
    elif label == 1:  # automobile: low body + cabin + 2 wheels
        img = _ground_background(size, rng, ov)
        body_color = _color(rng, (0.75, 0.15, 0.15), ov)
        _paint(img, box_mask(size, cx, cy + 0.08, 0.30 * scale, 0.09 * scale, jit(0.3)), body_color)
        _paint(img, box_mask(size, cx, cy - 0.04, 0.16 * scale, 0.07 * scale, jit(0.3)), body_color * 0.85)
        wheel_color = np.array([0.08, 0.08, 0.08])
        for wx in (cx - 0.18 * scale, cx + 0.18 * scale):
            _paint(img, ellipse_mask(size, wx, cy + 0.17, 0.06 * scale, 0.06 * scale), wheel_color)
    elif label == 2:  # bird: small body, head, beak, one wing
        img = _sky_background(size, rng, ov)
        body_color = _color(rng, (0.55, 0.40, 0.25), ov)
        _paint(img, ellipse_mask(size, cx, cy, 0.16 * scale, 0.10 * scale, jit()), body_color)
        _paint(img, ellipse_mask(size, cx + 0.15 * scale, cy - 0.08, 0.06 * scale, 0.06 * scale), body_color)
        beak = triangle_mask(
            size,
            (cx + 0.2 * scale, cy - 0.1),
            (cx + 0.28 * scale, cy - 0.07),
            (cx + 0.2 * scale, cy - 0.05),
        )
        _paint(img, beak, _color(rng, (0.9, 0.7, 0.1), ov))
        wing = triangle_mask(
            size,
            (cx - 0.05, cy - 0.03),
            (cx - 0.2 * scale, cy - 0.2 * scale),
            (cx + 0.08, cy - 0.05),
        )
        _paint(img, wing, body_color * 0.8)
    elif label in (3, 5):  # cat (3) and dog (5): same head, different ears
        img = _ground_background(size, rng, ov)
        fur = _color(rng, (0.60, 0.45, 0.30) if label == 5 else (0.55, 0.50, 0.45), ov)
        _paint(img, ellipse_mask(size, cx, cy + 0.05, 0.20 * scale, 0.18 * scale), fur)
        if label == 3:  # pointed upright ears
            for sx in (-1, 1):
                ear = triangle_mask(
                    size,
                    (cx + sx * 0.14 * scale, cy - 0.08),
                    (cx + sx * 0.19 * scale, cy - 0.30 * scale),
                    (cx + sx * 0.04 * scale, cy - 0.12),
                )
                _paint(img, ear, fur * 0.9)
        else:  # floppy side ears
            for sx in (-1, 1):
                ear = ellipse_mask(
                    size, cx + sx * 0.2 * scale, cy - 0.02, 0.06 * scale, 0.14 * scale, sx * 0.5
                )
                _paint(img, ear, fur * 0.8)
        eye_color = np.array([0.05, 0.05, 0.05])
        for sx in (-1, 1):
            _paint(img, ellipse_mask(size, cx + sx * 0.07, cy, 0.025, 0.025), eye_color)
        # dog: visible snout blob
        if label == 5:
            _paint(img, ellipse_mask(size, cx, cy + 0.1, 0.07 * scale, 0.05 * scale), fur * 1.15)
    elif label in (4, 7):  # deer (4) and horse (7): body+legs; deer has antlers
        img = _ground_background(size, rng, ov)
        coat = _color(rng, (0.55, 0.38, 0.20) if label == 4 else (0.40, 0.25, 0.15), ov)
        body_w = 0.22 * scale
        _paint(img, ellipse_mask(size, cx, cy, body_w, 0.11 * scale, jit(0.3)), coat)
        _paint(img, _legs(size, cx, cy + 0.08, body_w, 0.22 * scale, 0.016, rng, j), coat * 0.9)
        # neck + head
        _paint(img, line_mask(size, cx + body_w * 0.8, cy - 0.02, cx + body_w * 1.1, cy - 0.2 * scale, 0.035), coat)
        _paint(img, ellipse_mask(size, cx + body_w * 1.15, cy - 0.22 * scale, 0.06 * scale, 0.045 * scale, 0.4), coat)
        if label == 4:  # antlers: two thin lines above the head
            hx, hy = cx + body_w * 1.15, cy - 0.26 * scale
            for dx in (-0.05, 0.03):
                _paint(img, line_mask(size, hx, hy, hx + dx, hy - 0.12 * scale, 0.010), coat * 0.7)
        else:  # horse: tail
            _paint(img, line_mask(size, cx - body_w, cy, cx - body_w - 0.08, cy + 0.12, 0.015), coat * 0.6)
    elif label == 6:  # frog: wide flat body, two eye bumps
        img = _ground_background(size, rng, ov)
        skin = _color(rng, (0.25, 0.60, 0.20), ov)
        _paint(img, ellipse_mask(size, cx, cy + 0.08, 0.26 * scale, 0.13 * scale), skin)
        for sx in (-1, 1):
            _paint(img, ellipse_mask(size, cx + sx * 0.12, cy - 0.06, 0.055, 0.055), skin * 0.9)
            _paint(img, ellipse_mask(size, cx + sx * 0.12, cy - 0.07, 0.02, 0.02), np.array([0.05, 0.05, 0.05]))
        for sx in (-1, 1):  # folded legs
            _paint(img, ellipse_mask(size, cx + sx * 0.24 * scale, cy + 0.14, 0.08, 0.05, sx * 0.6), skin * 0.85)
    elif label == 8:  # ship: hull on waterline + superstructure
        img = _sea_background(size, rng, ov)
        hull_color = _color(rng, (0.35, 0.35, 0.40), ov)
        hull = triangle_mask(
            size,
            (cx - 0.3 * scale, cy + 0.05),
            (cx + 0.3 * scale, cy + 0.05),
            (cx + 0.18 * scale, cy + 0.2 * scale),
        )
        hull = np.maximum(
            hull,
            triangle_mask(
                size,
                (cx - 0.3 * scale, cy + 0.05),
                (cx - 0.18 * scale, cy + 0.2 * scale),
                (cx + 0.18 * scale, cy + 0.2 * scale),
            ),
        )
        _paint(img, hull, hull_color)
        _paint(img, box_mask(size, cx, cy - 0.05, 0.12 * scale, 0.08 * scale), hull_color * 1.3)
        _paint(img, line_mask(size, cx + 0.05, cy - 0.13, cx + 0.05, cy - 0.3 * scale, 0.015), hull_color * 0.8)
    elif label == 9:  # truck: tall box cargo + cab + 2-3 wheels
        img = _ground_background(size, rng, ov)
        cargo_color = _color(rng, (0.70, 0.55, 0.20), ov)
        _paint(img, box_mask(size, cx - 0.06, cy - 0.02, 0.24 * scale, 0.16 * scale, jit(0.2)), cargo_color)
        _paint(img, box_mask(size, cx + 0.25 * scale, cy + 0.06, 0.09 * scale, 0.08 * scale), cargo_color * 0.8)
        wheel_color = np.array([0.08, 0.08, 0.08])
        for wx in (cx - 0.2 * scale, cx + 0.02, cx + 0.26 * scale):
            _paint(img, ellipse_mask(size, wx, cy + 0.17, 0.055 * scale, 0.055 * scale), wheel_color)
    else:
        raise ValueError(f"label must be in 0..9, got {label}")

    # Random occluder patch (makes a subset genuinely hard to classify).
    if rng.random() < cfg.occluder_prob:
        occ_color = rng.uniform(0.0, 1.0, size=3)
        occ = box_mask(
            size,
            rng.uniform(0.2, 0.8),
            rng.uniform(0.2, 0.8),
            rng.uniform(0.04, 0.12),
            rng.uniform(0.04, 0.12),
            rng.uniform(0, np.pi),
        )
        _paint(img, occ * 0.85, occ_color)

    # Global illumination jitter + pixel noise.
    img *= 1.0 + 0.15 * j * rng.standard_normal()
    img += cfg.noise * rng.standard_normal(img.shape)
    return np.clip(img, 0.0, 1.0)


def generate_images(
    labels: np.ndarray, rng: np.random.Generator, config: SyntheticConfig | None = None
) -> np.ndarray:
    """Render a batch of images for the given integer labels."""
    cfg = config or SyntheticConfig()
    labels = np.asarray(labels)
    out = np.empty((labels.shape[0], 3, cfg.image_size, cfg.image_size))
    for i, label in enumerate(labels):
        out[i] = render_class_image(int(label), rng, cfg)
    return out
