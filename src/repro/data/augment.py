"""Training-time data augmentation.

The CIFAR-10 recipes the paper's host models descend from (cuda-convnet,
NiN, All-CNN) train with mirroring and random crops; this module provides
those plus mild photometric jitter for the numpy trainer.  All transforms
take and return NCHW float tensors in [0, 1] and draw randomness from an
explicit generator.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "random_horizontal_flip",
    "random_shift",
    "random_brightness",
    "random_contrast",
    "Augmenter",
]


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Mirror each image left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    out = images.copy()
    flip = rng.random(images.shape[0]) < probability
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_shift(
    images: np.ndarray, rng: np.random.Generator, max_shift: int = 3
) -> np.ndarray:
    """Pad-and-crop translation by up to ``max_shift`` pixels per axis."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    if max_shift == 0:
        return images.copy()
    n, c, h, w = images.shape
    padded = np.pad(
        images,
        ((0, 0), (0, 0), (max_shift, max_shift), (max_shift, max_shift)),
        mode="edge",
    )
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * max_shift + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy : dy + h, dx : dx + w]
    return out


def random_brightness(
    images: np.ndarray, rng: np.random.Generator, max_delta: float = 0.15
) -> np.ndarray:
    """Add a per-image constant offset in [-max_delta, max_delta]."""
    if max_delta < 0:
        raise ValueError("max_delta must be non-negative")
    delta = rng.uniform(-max_delta, max_delta, size=(images.shape[0], 1, 1, 1))
    return np.clip(images + delta, 0.0, 1.0)


def random_contrast(
    images: np.ndarray, rng: np.random.Generator, max_factor: float = 0.25
) -> np.ndarray:
    """Scale each image around its mean by a factor in [1-f, 1+f]."""
    if max_factor < 0:
        raise ValueError("max_factor must be non-negative")
    factor = rng.uniform(1 - max_factor, 1 + max_factor, size=(images.shape[0], 1, 1, 1))
    mean = images.mean(axis=(2, 3), keepdims=True)
    return np.clip((images - mean) * factor + mean, 0.0, 1.0)


class Augmenter:
    """Composable augmentation pipeline with its own RNG.

    >>> aug = Augmenter(seed=0)
    >>> batch = aug(batch)          # doctest: +SKIP
    """

    def __init__(
        self,
        transforms: Sequence[Callable[[np.ndarray, np.random.Generator], np.ndarray]] | None = None,
        seed: int = 0,
    ):
        self.transforms = list(
            transforms
            if transforms is not None
            else (random_horizontal_flip, random_shift, random_brightness)
        )
        self.rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        if images.ndim != 4:
            raise ValueError("images must be (N, C, H, W)")
        out = images
        for transform in self.transforms:
            out = transform(out, self.rng)
        return out
