"""Network zoo: FINN CNV (Table I) and host Models A/B/C (Table III)."""

from .finn_cnv import CNV_CHANNELS, CNV_FC_WIDTH, build_finn_cnv, scaled_channels
from .host_models import build_model_a, build_model_b, build_model_c
from .registry import MODEL_BUILDERS, build_model, model_names

__all__ = [
    "CNV_CHANNELS",
    "CNV_FC_WIDTH",
    "scaled_channels",
    "build_finn_cnv",
    "build_model_a",
    "build_model_b",
    "build_model_c",
    "MODEL_BUILDERS",
    "build_model",
    "model_names",
]
