"""Model registry: name -> builder, as the experiments refer to them."""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn import Sequential
from .finn_cnv import build_finn_cnv
from .host_models import build_model_a, build_model_b, build_model_c

__all__ = ["MODEL_BUILDERS", "build_model", "model_names"]

MODEL_BUILDERS: dict[str, Callable[..., Sequential]] = {
    "finn_cnv": build_finn_cnv,
    "model_a": build_model_a,
    "model_b": build_model_b,
    "model_c": build_model_c,
}


def model_names() -> list[str]:
    return sorted(MODEL_BUILDERS)


def build_model(name: str, scale: float = 1.0, rng: np.random.Generator | None = None, **kwargs) -> Sequential:
    """Build a model by registry name."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {model_names()}") from None
    return builder(scale=scale, rng=rng, **kwargs)
