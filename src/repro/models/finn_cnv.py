"""The FINN CNV network of Table I.

Topology (no zero padding, as the paper's table states):

    input 32x32 RGB
    3x3-conv-64   -> 30x30
    3x3-conv-64   -> 28x28
    maxpool 2x2   -> 14x14
    3x3-conv-128  -> 12x12
    3x3-conv-128  -> 10x10
    maxpool 2x2   -> 5x5
    3x3-conv-256  -> 3x3
    3x3-conv-256  -> 1x1
    FC-64
    FC-64
    FC-64 (no activation)

The final layer has 64 outputs although CIFAR-10 has 10 classes: FINN pads
the last matrix to align with the PE/SIMD geometry, and only the first 10
outputs are used as class scores (``FoldedBNN.class_scores`` truncates).

Every conv/FC is binarized and followed by BatchNorm + sign activation,
except the last FC which keeps its BatchNorm affine output (paper: "the
last layer outputs non-binarised classification result and does not
require thresholding").
"""

from __future__ import annotations

import numpy as np

from ..bnn import BinaryActivation, BinaryConv2D, BinaryDense
from ..nn import BatchNorm, Flatten, MaxPool2D, Sequential

__all__ = ["CNV_CHANNELS", "CNV_FC_WIDTH", "scaled_channels", "build_finn_cnv"]

CNV_CHANNELS = (64, 64, 128, 128, 256, 256)
CNV_FC_WIDTH = 64
NUM_CLASSES = 10


def scaled_channels(scale: float) -> tuple[int, ...]:
    """Width-scaled conv channels, floored at 8 and rounded to multiples of 4."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return tuple(max(8, int(round(c * scale / 4)) * 4) for c in CNV_CHANNELS)


def build_finn_cnv(
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    image_size: int = 32,
) -> Sequential:
    """Build the (optionally width-scaled) trainable binarized CNV network.

    ``scale=1.0`` is the exact Table I topology; smaller scales shrink the
    conv widths for laptop-scale training (see DESIGN.md section 5) while
    preserving depth, pooling structure, and the padded 64-wide FC head.
    """
    rng = rng or np.random.default_rng(0)
    c = scaled_channels(scale)

    def conv_block(cin, cout):
        return [
            BinaryConv2D(cin, cout, 3, rng=rng),
            BatchNorm(cout),
            BinaryActivation(),
        ]

    layers = []
    layers += conv_block(3, c[0])
    layers += conv_block(c[0], c[1])
    layers.append(MaxPool2D(2))
    layers += conv_block(c[1], c[2])
    layers += conv_block(c[2], c[3])
    layers.append(MaxPool2D(2))
    layers += conv_block(c[3], c[4])
    layers += conv_block(c[4], c[5])
    layers.append(Flatten())

    net = Sequential(layers, name=f"finn_cnv(scale={scale})")
    flat = net.output_shape((3, image_size, image_size))[0]

    net.add(BinaryDense(flat, CNV_FC_WIDTH, rng=rng))
    net.add(BatchNorm(CNV_FC_WIDTH))
    net.add(BinaryActivation())
    net.add(BinaryDense(CNV_FC_WIDTH, CNV_FC_WIDTH, rng=rng))
    net.add(BatchNorm(CNV_FC_WIDTH))
    net.add(BinaryActivation())
    net.add(BinaryDense(CNV_FC_WIDTH, CNV_FC_WIDTH, rng=rng))
    net.add(BatchNorm(CNV_FC_WIDTH))
    return net
