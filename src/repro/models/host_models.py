"""The three floating-point host networks of Table III.

* **Model A** — Alex Krizhevsky's cuda-convnet CIFAR-10 network: three 5x5
  conv stages with pooling and local response normalization, FC-10 head.
  Fast; the paper's real-time multi-precision partner.
* **Model B** — Network in Network (Lin, Chen & Yan 2013): 5x5/1x1 mlpconv
  stacks with dropout, global-average-pooled 10-map output.
* **Model C** — All Convolutional Net "All-CNN-C" (Springenberg et al.
  2014): all-3x3 network where stride-2 convolutions replace pooling.

``scale`` multiplies conv widths for laptop-scale training (DESIGN.md §5);
``scale=1.0`` reproduces Table III exactly and is what the host cost model
(:mod:`repro.host`) analyses for the paper's images/sec numbers.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sequential,
)

__all__ = ["build_model_a", "build_model_b", "build_model_c"]

NUM_CLASSES = 10


def _width(base: int, scale: float) -> int:
    if scale <= 0:
        raise ValueError("scale must be positive")
    return max(8, int(round(base * scale / 4)) * 4)


def build_model_a(
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    image_size: int = 32,
) -> Sequential:
    """Model A: the cuda-convnet CIFAR-10 'quick' network (Table III)."""
    rng = rng or np.random.default_rng(0)
    w32 = _width(32, scale)
    w64 = _width(64, scale)
    layers = [
        Conv2D(3, w32, 5, pad=2, rng=rng),
        MaxPool2D(3, 2),
        LocalResponseNorm(size=5, alpha=5e-5, beta=0.75),
        Conv2D(w32, w32, 5, pad=2, rng=rng),
        ReLU(),
        AvgPool2D(3, 2),
        LocalResponseNorm(size=5, alpha=5e-5, beta=0.75),
        Conv2D(w32, w64, 5, pad=2, rng=rng),
        ReLU(),
        AvgPool2D(3, 2),
        Flatten(),
    ]
    net = Sequential(layers, name=f"model_a(scale={scale})")
    flat = net.output_shape((3, image_size, image_size))[0]
    net.add(Dense(flat, NUM_CLASSES, rng=rng))
    return net


def _bias_up_classifier(net: Sequential, value: float = 0.1) -> Sequential:
    """Positively bias the final 1x1 classifier conv.

    Models B and C end in ``1x1-conv-10 -> ReLU -> global avg pool``
    (Table III).  If every classifier activation dies, the ReLU blocks all
    gradient and training is stuck at chance forever; starting the biases
    positive keeps the units alive — a training-recipe detail only, the
    topology is unchanged.
    """
    last_conv = [l for l in net if isinstance(l, Conv2D)][-1]
    if last_conv.bias is not None:
        last_conv.bias.value = np.full_like(last_conv.bias.value, value)
    return net


def build_model_b(
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    dropout: bool = True,
) -> Sequential:
    """Model B: Network in Network (Table III)."""
    rng = rng or np.random.default_rng(0)
    w192 = _width(192, scale)
    w160 = _width(160, scale)
    w96 = _width(96, scale)
    drop = 0.5 if dropout else 0.0
    layers = [
        Conv2D(3, w192, 5, pad=2, rng=rng), ReLU(),
        Conv2D(w192, w160, 1, rng=rng), ReLU(),
        Conv2D(w160, w96, 1, rng=rng), ReLU(),
        MaxPool2D(3, 2),
        Dropout(drop, rng=rng),
        Conv2D(w96, w192, 5, pad=2, rng=rng), ReLU(),
        Conv2D(w192, w192, 1, rng=rng), ReLU(),
        Conv2D(w192, w192, 1, rng=rng), ReLU(),
        AvgPool2D(3, 2),
        Dropout(drop, rng=rng),
        Conv2D(w192, w192, 3, pad=1, rng=rng), ReLU(),
        Conv2D(w192, w192, 1, rng=rng), ReLU(),
        Conv2D(w192, NUM_CLASSES, 1, rng=rng), ReLU(),
        GlobalAvgPool2D(),
    ]
    return _bias_up_classifier(Sequential(layers, name=f"model_b(scale={scale})"))


def build_model_c(
    scale: float = 1.0,
    rng: np.random.Generator | None = None,
    dropout: bool = True,
) -> Sequential:
    """Model C: All-CNN-C (Table III) — stride-2 convs replace pooling."""
    rng = rng or np.random.default_rng(0)
    w96 = _width(96, scale)
    w192 = _width(192, scale)
    in_drop = 0.2 if dropout else 0.0
    mid_drop = 0.5 if dropout else 0.0
    layers = [
        Dropout(in_drop, rng=rng),
        Conv2D(3, w96, 3, pad=1, rng=rng), ReLU(),
        Conv2D(w96, w96, 3, pad=1, rng=rng), ReLU(),
        Conv2D(w96, w96, 3, pad=1, stride=2, rng=rng), ReLU(),
        Dropout(mid_drop, rng=rng),
        Conv2D(w96, w192, 3, pad=1, rng=rng), ReLU(),
        Conv2D(w192, w192, 3, pad=1, rng=rng), ReLU(),
        Conv2D(w192, w192, 3, pad=1, stride=2, rng=rng), ReLU(),
        Dropout(mid_drop, rng=rng),
        Conv2D(w192, w192, 3, rng=rng), ReLU(),
        Conv2D(w192, w192, 1, rng=rng), ReLU(),
        Conv2D(w192, NUM_CLASSES, 1, rng=rng), ReLU(),
        GlobalAvgPool2D(),
    ]
    return _bias_up_classifier(Sequential(layers, name=f"model_c(scale={scale})"))
