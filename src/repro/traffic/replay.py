"""Open-loop trace replay against any ``submit() -> Future`` backend.

``serve-bench``'s client fleet is *closed-loop*: a client submits, then
paces itself, so when the server slows down the offered load politely
slows with it — queueing collapse is unobservable by construction.
:class:`TraceReplayer` is the open-loop opposite: it walks an
:class:`~repro.traffic.trace.ArrivalTrace` on its own clock, submitting
each event at its scheduled instant *without ever waiting on a
response*.  If the server falls behind, requests pile into its queues
exactly as a real camera feed would pile them into a socket buffer.

The backend is anything with the cascade's front-door shape —
``submit(payload) -> concurrent.futures.Future`` — which covers the
in-process :class:`repro.serve.CascadeServer`, the socket
:class:`repro.net.NetClient`, and the mock backends ``tests/traffic``
replays against.  Payloads are bound at replay time from a bank indexed
by each event's ``payload_ref``.

The clock is injectable (``clock``/``sleep``) and the schedule can be
compressed via ``time_scale``, so CI replays a "10 second" trace in a
fraction of a second without touching the trace file — determinism of
the *submission order* is preserved either way, because order is defined
by the trace, not by timing.

One intentional wrinkle: ``CascadeServer.submit`` *blocks* while the
micro-batcher's front buffer is full (backpressure).  The replayer does
not fight this — the block simply makes later submissions late, and the
per-event ``lag_seconds`` it records is exactly the schedule slip an SLO
report needs to see.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence

from .. import obs
from .trace import ArrivalTrace

__all__ = ["ReplayedRequest", "ReplayResult", "TraceReplayer"]


class ReplayedRequest:
    """One submitted (or refused) arrival, with its schedule bookkeeping."""

    __slots__ = ("index", "payload_ref", "scheduled_s", "submitted_s", "future", "error")

    def __init__(self, index, payload_ref, scheduled_s, submitted_s, future, error):
        self.index = index
        self.payload_ref = payload_ref
        self.scheduled_s = scheduled_s      # trace offset, after time scaling
        self.submitted_s = submitted_s      # actual submit instant (clock-relative)
        self.future: Future | None = future
        self.error: BaseException | None = error

    @property
    def accepted(self) -> bool:
        """True when the backend accepted the submission."""
        return self.future is not None

    @property
    def lag_seconds(self) -> float:
        """Schedule slip: how late the submission left the replayer."""
        return self.submitted_s - self.scheduled_s


class ReplayResult:
    """Everything one :meth:`TraceReplayer.replay` run produced."""

    def __init__(self, trace: ArrivalTrace, requests: list[ReplayedRequest],
                 wall_seconds: float, time_scale: float):
        self.trace = trace
        self.requests = requests
        self.wall_seconds = wall_seconds
        self.time_scale = time_scale

    @property
    def attempted(self) -> int:
        return len(self.requests)

    @property
    def accepted(self) -> int:
        return sum(1 for r in self.requests if r.accepted)

    @property
    def refused(self) -> int:
        """Submissions the backend rejected with an exception at the door."""
        return self.attempted - self.accepted

    @property
    def futures(self) -> list[Future]:
        return [r.future for r in self.requests if r.future is not None]

    @property
    def max_lag_seconds(self) -> float:
        return max((r.lag_seconds for r in self.requests), default=0.0)

    def settle(self, timeout: float | None = None) -> tuple[list, list]:
        """Wait for every accepted future; returns ``(results, errors)``.

        Requests refused at the door are included in *errors* — every
        attempted arrival lands in exactly one of the two lists, which is
        what lets chaos-under-load tests assert terminal coverage.
        """
        results, errors = [], []
        for request in self.requests:
            if request.future is None:
                errors.append(request.error)
                continue
            try:
                results.append(request.future.result(timeout=timeout))
            except Exception as exc:
                errors.append(exc)
        return results, errors


class TraceReplayer:
    """Replay :class:`ArrivalTrace` s open-loop against a submit backend.

    Parameters
    ----------
    submit:
        ``payload -> Future`` front door (e.g. ``server.submit`` or
        ``client.submit``).  Exceptions it raises refuse that single
        arrival (recorded, counted) without stopping the replay — except
        for backend-closed errors, which end the run since every later
        submission would fail identically.
    payloads:
        Payload bank indexed by each event's ``payload_ref``.
    time_scale:
        Playback speed multiplier: 10.0 replays a 10 s trace in ~1 s.
    clock / sleep:
        Injectable time sources (tests replay on a fake clock and a
        no-op sleep; the submission count and order are unaffected).
    stop_on:
        Exception types that abort the replay (default:
        ``RuntimeError`` — which covers ``ServerClosed`` and a closed
        ``NetClient`` — remaining events are *not* recorded).
    """

    def __init__(
        self,
        submit: Callable[[object], Future],
        payloads: Sequence,
        time_scale: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        stop_on: tuple[type[BaseException], ...] = (RuntimeError,),
    ):
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if len(payloads) == 0:
            raise ValueError("payload bank must not be empty")
        self._submit = submit
        self._payloads = payloads
        self._time_scale = float(time_scale)
        self._clock = clock
        self._sleep = sleep
        self._stop_on = stop_on
        self._lock = threading.Lock()
        self._attempted = 0
        self._accepted = 0

    @property
    def attempted(self) -> int:
        """Submissions started so far (thread-safe live counter)."""
        with self._lock:
            return self._attempted

    @property
    def accepted(self) -> int:
        """Submissions the backend accepted so far (thread-safe)."""
        with self._lock:
            return self._accepted

    def replay(self, trace: ArrivalTrace) -> ReplayResult:
        """Submit every event at its (scaled) offset; never await responses."""
        bank_size = len(self._payloads)
        overflow = trace.max_payload_ref()
        if overflow >= bank_size:
            raise ValueError(
                f"trace references payload {overflow} but the bank holds "
                f"only {bank_size} payloads"
            )
        start = self._clock()
        requests: list[ReplayedRequest] = []
        for index, event in enumerate(trace):
            scheduled = event.t_offset / self._time_scale
            wait = start + scheduled - self._clock()
            if wait > 0:
                self._sleep(wait)
            payload = self._payloads[event.payload_ref]
            with self._lock:
                self._attempted += 1
            submitted_s = self._clock() - start
            future: Future | None = None
            error: BaseException | None = None
            try:
                future = self._submit(payload)
                with self._lock:
                    self._accepted += 1
            except Exception as exc:
                error = exc
                obs.count("traffic.refused", 1)
                if isinstance(exc, self._stop_on):
                    requests.append(ReplayedRequest(
                        index, event.payload_ref, scheduled, submitted_s, None, exc
                    ))
                    break
            requests.append(ReplayedRequest(
                index, event.payload_ref, scheduled, submitted_s, future, error
            ))
        wall = self._clock() - start
        obs.count("traffic.submitted", sum(1 for r in requests if r.accepted))
        return ReplayResult(trace, requests, wall, self._time_scale)

    def replay_in_thread(
        self, trace: ArrivalTrace, name: str = "trace-replay"
    ) -> "ReplayHandle":
        """Run :meth:`replay` on a daemon thread; join via the handle."""
        handle = ReplayHandle()

        def run() -> None:
            try:
                handle._result = self.replay(trace)
            except BaseException as exc:  # surfaced on join(), never swallowed
                handle._error = exc

        handle._thread = threading.Thread(target=run, name=name, daemon=True)
        handle._thread.start()
        return handle


class ReplayHandle:
    """Join handle of a background replay (see ``replay_in_thread``)."""

    def __init__(self):
        self._thread: threading.Thread | None = None
        self._result: ReplayResult | None = None
        self._error: BaseException | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def join(self, timeout: float | None = None) -> ReplayResult:
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("trace replay still running")
        if self._error is not None:
            raise self._error
        return self._result
