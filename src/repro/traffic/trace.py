"""Replayable open-loop arrival traces (the workload's ground truth).

An :class:`ArrivalTrace` is a seeded, fully materialized list of
:class:`ArrivalEvent` — ``(t_offset, payload_ref)`` pairs — describing
*when* requests arrive and *which* payload each one carries, completely
decoupled from what serves them.  ``t_offset`` is seconds from the start
of the trace; ``payload_ref`` indexes a payload bank the replayer binds
at playback time (synthetic score vectors, video ROI crops, ...), so one
trace drives an in-process :class:`repro.serve.CascadeServer`, a
:class:`repro.net.NetClient` over sockets, or a bare mock identically.

The wire format is versioned JSON (mirroring
:class:`repro.faults.FaultPlan`) so traces live in version control and
benchmark results can name the exact workload that produced them:

.. code-block:: json

    {"version": 1, "name": "poisson", "seed": 7,
     "events": [[0.0013, 0], [0.0041, 1]]}

Determinism contract: construction validates that offsets are finite,
non-negative and time-sorted, serialization is canonical (sorted keys,
``repr``-exact floats), and every generator in
:mod:`repro.traffic.generators` derives all randomness from its seed —
so the same seed yields a *byte-identical* trace file and therefore an
identical submission order on replay.  Malformed files fail with a typed
:class:`TraceFormatError`, never a raw ``KeyError``/``JSONDecodeError``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "ArrivalEvent",
    "ArrivalTrace",
    "load_trace",
]

#: Serialized trace format version; bumped on incompatible changes.
TRACE_FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A trace file/blob is corrupt, truncated, or a different version."""


@dataclass(frozen=True)
class ArrivalEvent:
    """One arrival: at *t_offset* seconds, submit payload *payload_ref*."""

    t_offset: float
    payload_ref: int

    def __post_init__(self):
        offset = float(self.t_offset)
        if not math.isfinite(offset):
            raise TraceFormatError(f"t_offset must be finite, got {self.t_offset!r}")
        if offset < 0.0:
            raise TraceFormatError(f"t_offset must be >= 0, got {offset}")
        if int(self.payload_ref) != self.payload_ref or self.payload_ref < 0:
            raise TraceFormatError(
                f"payload_ref must be a non-negative int, got {self.payload_ref!r}"
            )
        object.__setattr__(self, "t_offset", offset)
        object.__setattr__(self, "payload_ref", int(self.payload_ref))


@dataclass(frozen=True)
class ArrivalTrace:
    """A named, seeded, time-sorted sequence of arrival events."""

    events: tuple[ArrivalEvent, ...]
    name: str = "trace"
    seed: int = 0

    def __post_init__(self):
        normalized = tuple(
            e if isinstance(e, ArrivalEvent) else ArrivalEvent(*e) for e in self.events
        )
        previous = 0.0
        for i, event in enumerate(normalized):
            if event.t_offset < previous:
                raise TraceFormatError(
                    f"events must be time-sorted: event {i} at t={event.t_offset} "
                    f"after t={previous}"
                )
            previous = event.t_offset
        object.__setattr__(self, "events", normalized)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events)

    @property
    def duration_seconds(self) -> float:
        """Offset of the last event (0 for an empty trace)."""
        return self.events[-1].t_offset if self.events else 0.0

    @property
    def mean_rate(self) -> float:
        """Events per second over the trace span (0 for degenerate traces)."""
        if len(self.events) < 2 or self.duration_seconds <= 0:
            return 0.0
        return len(self.events) / self.duration_seconds

    def max_payload_ref(self) -> int:
        """Largest payload index referenced (-1 for an empty trace)."""
        return max((e.payload_ref for e in self.events), default=-1)

    def scaled(self, time_scale: float) -> "ArrivalTrace":
        """The same arrivals compressed (scale > 1) or stretched in time."""
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        return ArrivalTrace(
            events=tuple(
                ArrivalEvent(e.t_offset / time_scale, e.payload_ref)
                for e in self.events
            ),
            name=self.name,
            seed=self.seed,
        )

    def rate_in_window(self, start: float, stop: float) -> float:
        """Offered rate (events/s) of the half-open window ``[start, stop)``."""
        if stop <= start:
            raise ValueError("need start < stop")
        n = sum(1 for e in self.events if start <= e.t_offset < stop)
        return n / (stop - start)

    # -- canonical JSON round-trip -------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": TRACE_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "events": [[e.t_offset, e.payload_ref] for e in self.events],
        }

    def to_json(self) -> str:
        """Canonical serialization: same trace ⇒ byte-identical string."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: object) -> "ArrivalTrace":
        if not isinstance(data, dict):
            raise TraceFormatError(
                f"trace must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - {"version", "name", "seed", "events"}
        if unknown:
            raise TraceFormatError(f"unknown trace keys: {sorted(unknown)}")
        version = data.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {version!r} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )
        events = data.get("events")
        if not isinstance(events, list):
            raise TraceFormatError("trace 'events' must be a list")
        normalized = []
        for i, entry in enumerate(events):
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise TraceFormatError(
                    f"event {i} must be a [t_offset, payload_ref] pair, got {entry!r}"
                )
            t_offset, payload_ref = entry
            if not isinstance(t_offset, (int, float)) or isinstance(t_offset, bool):
                raise TraceFormatError(f"event {i} t_offset must be a number")
            if not isinstance(payload_ref, int) or isinstance(payload_ref, bool):
                raise TraceFormatError(f"event {i} payload_ref must be an int")
            normalized.append(ArrivalEvent(t_offset, payload_ref))
        name = data.get("name", "trace")
        seed = data.get("seed", 0)
        if not isinstance(name, str):
            raise TraceFormatError("trace 'name' must be a string")
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TraceFormatError("trace 'seed' must be an int")
        return cls(events=tuple(normalized), name=name, seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"trace is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def load_trace(path: str | Path) -> ArrivalTrace:
    """Read an :class:`ArrivalTrace` from a JSON file (``--trace path``)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
    return ArrivalTrace.from_json(text)
