"""Open-loop load harness (``repro serve-load``): trace -> cascade -> SLO.

Glues the pieces of this subsystem together: a named shape from
:mod:`repro.traffic.generators` (or a trace file) replays open-loop
through a :class:`~repro.traffic.replay.TraceReplayer` against a
:class:`repro.serve.CascadeServer` running the same oracle sleep-stage
stack as ``serve-bench`` — while a :class:`repro.serve.SLOAutoscaler`
ticks once per control window, growing the host pool and tightening the
admission knobs to pull windowed p99 back under the target.

The per-window report is the product: offered vs. accepted rate,
p50/p99, the scaler's action and the worker count, window by window —
the flash-crowd recovery story in one table.  ``run_serve_load`` returns
a JSON-serializable :class:`ServeLoadReport`; the committed
``benchmarks/results/BENCH_traffic.json`` is one of these.

Everything is seeded (trace, payload bank, fault plan) and the clock is
compressible (``time_scale``), so CI replays a "16 second" flash crowd
in about a second and still sees the same submission order, the same
fault sequence, and balanced books — which is the exit-code gate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.dmu import DecisionMakingUnit
from ..core.report import format_rate, render_table
from ..serve import (
    AdaptiveThresholdController,
    CascadeServer,
    SLOAutoscaler,
)
from ..serve.bench import run_books
from .generators import TRACE_SHAPES, make_trace
from .replay import TraceReplayer
from .trace import ArrivalTrace, load_trace

__all__ = [
    "ServeLoadConfig",
    "WindowStat",
    "ServeLoadReport",
    "oracle_load_stack",
    "run_serve_load",
    "format_serve_load",
]


@dataclass(frozen=True)
class ServeLoadConfig:
    """One serve-load scenario (defaults: flash crowd vs. a 25 ms SLO)."""

    #: A shape name (:data:`repro.traffic.TRACE_SHAPES`) or a trace-file path.
    trace: str = "flash"
    #: Nominal offered rate for shape mode (ignored when *trace* is a path).
    rate: float = 400.0
    #: Trace span in *trace* seconds for shape mode.
    duration: float = 16.0
    #: Playback compression: 4.0 replays the trace 4x faster than recorded.
    time_scale: float = 1.0
    slo_p99_ms: float = 25.0
    #: Control-window length in wall seconds (autoscaler tick period).
    window_seconds: float = 0.5
    seed: int = 0
    num_payloads: int = 64
    # Oracle stage costs (same roles as ServeBenchConfig's).
    t_bnn: float = 0.00025
    t_fp: float = 0.004
    naive_threshold: float = 0.92
    target_rerun_ratio: float = 0.30
    controller_gain: float = 0.08
    max_batch_size: int = 32
    batch_delay_s: float = 0.004
    host_queue_capacity: int = 64
    host_batch_size: int = 8
    #: Starting size of the parallel host process pool (None = serial host
    #: unless ``REPRO_HOST_WORKERS`` forces one; 0 also means serial).
    host_workers: int | None = 1
    min_workers: int = 1
    max_workers: int = 4
    cooldown_windows: int = 2
    clear_windows: int = 3
    tighten_factor: float = 0.5
    max_tighten_depth: int = 3
    #: Path to a :class:`repro.faults.FaultPlan` JSON for chaos-under-load.
    fault_plan_path: str | None = None
    #: Cap on drain windows after the trace ends (safety, not pacing).
    max_drain_windows: int = 120

    @property
    def is_trace_file(self) -> bool:
        return self.trace not in TRACE_SHAPES


@dataclass(frozen=True)
class WindowStat:
    """One control window of a serve-load run (JSON-serializable)."""

    index: int
    offered_rate: float      # replayer submissions/s this window
    accepted_rate: float     # server-admitted submissions/s
    completed_rate: float    # terminal answers/s
    p50_ms: float
    p99_ms: float
    violating: bool
    action: str
    workers: int
    tighten_depth: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "offered_rate": round(self.offered_rate, 3),
            "accepted_rate": round(self.accepted_rate, 3),
            "completed_rate": round(self.completed_rate, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "violating": self.violating,
            "action": self.action,
            "workers": self.workers,
            "tighten_depth": self.tighten_depth,
        }


@dataclass(frozen=True)
class ServeLoadReport:
    """Everything one :func:`run_serve_load` run produced."""

    trace_name: str
    trace_events: int
    trace_seconds: float      # trace-time span (before time scaling)
    time_scale: float
    slo_p99_ms: float
    windows: list[WindowStat]
    books: dict
    attempted: int            # replayer submissions started
    refused: int              # rejected at the front door (ServerClosed)
    settled_ok: int           # futures that resolved with an answer
    settled_err: int          # futures that resolved with an error
    violation_seconds: float
    actions_taken: int
    final_workers: int
    wall_seconds: float
    fault_plan_path: str | None = None
    fault_log: dict = field(default_factory=dict)  # stage -> injected kinds

    @property
    def recovered(self) -> bool:
        """p99 back under the SLO by the end of the run (last window)."""
        return bool(self.windows) and not self.windows[-1].violating

    @property
    def violation_windows(self) -> int:
        return sum(1 for w in self.windows if w.violating)

    @property
    def terminal_fraction(self) -> float:
        """Attempted arrivals that reached *any* terminal state."""
        total = self.settled_ok + self.settled_err + self.refused
        return total / self.attempted if self.attempted else 1.0

    def to_dict(self) -> dict:
        return {
            "trace": {
                "name": self.trace_name,
                "events": self.trace_events,
                "seconds": round(self.trace_seconds, 3),
                "time_scale": self.time_scale,
            },
            "slo_p99_ms": self.slo_p99_ms,
            "windows": [w.to_dict() for w in self.windows],
            "books": self.books,
            "attempted": self.attempted,
            "refused": self.refused,
            "settled_ok": self.settled_ok,
            "settled_err": self.settled_err,
            "violation_seconds": round(self.violation_seconds, 3),
            "violation_windows": self.violation_windows,
            "actions_taken": self.actions_taken,
            "final_workers": self.final_workers,
            "recovered": self.recovered,
            "wall_seconds": round(self.wall_seconds, 3),
            "fault_plan": self.fault_plan_path,
            "fault_log": self.fault_log,
        }


class _OracleHost:
    """Picklable host stage: sleep ``t_fp`` per image, answer the argmax.

    A module-level class (not a closure) so the ``spawn`` start method
    can ship it to :class:`repro.parallel.ParallelHostRunner` workers.
    """

    def __init__(self, t_fp: float):
        self.t_fp = t_fp

    def __call__(self, images: np.ndarray) -> np.ndarray:
        time.sleep(self.t_fp * len(images))
        return np.asarray(images).argmax(axis=1)


def oracle_load_stack(config: ServeLoadConfig):
    """(bnn_fn, dmu, host_fn, payloads) — serve-bench's oracle, bank-sized.

    Payloads are pre-drawn 10-way score vectors (the "images"); the BNN
    sleeps ``t_bnn`` per image and echoes them, the host is
    :class:`_OracleHost`, and the DMU reads the top-2 margin so every
    rerun ratio is reachable by some threshold.
    """
    rng = np.random.default_rng(config.seed)
    payloads = rng.normal(0.0, 1.0, size=(config.num_payloads, 10))
    weights = np.zeros(10)
    weights[0], weights[1] = 4.0, -4.0
    dmu = DecisionMakingUnit(weights, bias=0.0, threshold=config.naive_threshold)

    def bnn_fn(images: np.ndarray) -> np.ndarray:
        time.sleep(config.t_bnn * len(images))
        return images

    return bnn_fn, dmu, _OracleHost(config.t_fp), payloads


def _resolve_trace(config: ServeLoadConfig) -> ArrivalTrace:
    if config.is_trace_file:
        return load_trace(config.trace)
    return make_trace(
        config.trace,
        rate=config.rate,
        duration=config.duration,
        seed=config.seed,
        num_payloads=config.num_payloads,
    )


def run_serve_load(config: ServeLoadConfig | None = None) -> ServeLoadReport:
    """Replay the trace against an oracle cascade under the SLO autoscaler."""
    config = config or ServeLoadConfig()
    trace = _resolve_trace(config)
    bnn_fn, dmu, host_fn, payloads = oracle_load_stack(config)
    bank_size = trace.max_payload_ref() + 1
    if bank_size > len(payloads):
        # A loaded trace may reference a larger bank than the default.
        rng = np.random.default_rng(config.seed)
        payloads = rng.normal(0.0, 1.0, size=(bank_size, 10))

    injector = None
    if config.fault_plan_path is not None:
        from ..faults import load_fault_plan, wrap_stack

        plan = load_fault_plan(config.fault_plan_path)
        bnn_fn, dmu, host_fn, injector = wrap_stack(plan, bnn_fn, dmu, host_fn)

    controller = AdaptiveThresholdController(
        initial_threshold=config.naive_threshold,
        target_rerun_ratio=config.target_rerun_ratio,
        gain=config.controller_gain,
    )
    server = CascadeServer(
        bnn_fn,
        dmu,
        host_fn,
        controller=controller,
        max_batch_size=config.max_batch_size,
        batch_delay_s=config.batch_delay_s,
        host_queue_capacity=config.host_queue_capacity,
        host_batch_size=config.host_batch_size,
        host_workers=config.host_workers,
    )
    scaler = SLOAutoscaler.for_server(
        server,
        slo_p99_ms=config.slo_p99_ms,
        min_workers=config.min_workers,
        max_workers=config.max_workers,
        cooldown_windows=config.cooldown_windows,
        clear_windows=config.clear_windows,
        tighten_factor=config.tighten_factor,
        max_tighten_depth=config.max_tighten_depth,
    )
    replayer = TraceReplayer(
        server.submit, payloads, time_scale=config.time_scale
    )
    windows: list[WindowStat] = []
    start = time.monotonic()
    handle = replayer.replay_in_thread(trace)
    prev_snap = server.snapshot()
    prev_offered = 0
    drain_windows = 0
    try:
        while True:
            time.sleep(config.window_seconds)
            offered = replayer.attempted
            snap = server.snapshot()
            delta = snap.since(prev_snap)
            decision = scaler.observe_window()
            span = decision.window_seconds or config.window_seconds
            windows.append(
                WindowStat(
                    index=decision.window,
                    offered_rate=(offered - prev_offered) / span,
                    accepted_rate=delta.submitted / span,
                    completed_rate=(delta.completed + delta.failed) / span,
                    p50_ms=decision.p50_ms,
                    p99_ms=decision.p99_ms,
                    violating=decision.violating,
                    action=decision.action,
                    workers=decision.workers,
                    tighten_depth=decision.tighten_depth,
                )
            )
            prev_snap, prev_offered = snap, offered
            if not handle.running:
                if snap.in_flight <= 0:
                    break
                drain_windows += 1
                if drain_windows >= config.max_drain_windows:
                    obs.instant("traffic.drain_timeout", in_flight=snap.in_flight)
                    break
        result = handle.join(timeout=30.0)
        ok, errs = result.settle(timeout=60.0)
    finally:
        server.close()
    total = server.snapshot()
    wall = time.monotonic() - start
    fault_log: dict = {}
    if injector is not None:
        from ..faults import STAGES

        fault_log = {
            stage: injector.log.counts_by_kind(stage) for stage in STAGES
        }
    return ServeLoadReport(
        trace_name=trace.name,
        trace_events=len(trace),
        trace_seconds=trace.duration_seconds,
        time_scale=config.time_scale,
        slo_p99_ms=config.slo_p99_ms,
        windows=windows,
        books=run_books(total),
        attempted=result.attempted,
        refused=result.refused,
        settled_ok=len(ok),
        settled_err=len(errs),
        violation_seconds=scaler.violation_seconds,
        actions_taken=scaler.actions_taken,
        final_workers=scaler.workers,
        wall_seconds=wall,
        fault_plan_path=config.fault_plan_path,
        fault_log=fault_log,
    )


def format_serve_load(report: ServeLoadReport) -> str:
    rows = [
        [
            str(w.index),
            format_rate(w.offered_rate),
            format_rate(w.accepted_rate),
            f"{w.p50_ms:.1f}",
            f"{w.p99_ms:.1f}",
            "YES" if w.violating else "",
            w.action,
            str(w.workers) if w.workers else "-",
            str(w.tighten_depth),
        ]
        for w in report.windows
    ]
    table = render_table(
        [
            "win",
            "offered/s",
            "accepted/s",
            "p50 ms",
            "p99 ms",
            "viol",
            "action",
            "workers",
            "tighten",
        ],
        rows,
        title=(
            f"serve-load: trace '{report.trace_name}' ({report.trace_events} "
            f"events over {report.trace_seconds:.1f}s, x{report.time_scale:g} "
            f"clock) vs SLO p99 <= {report.slo_p99_ms:g} ms"
        ),
    )
    b = report.books
    splits = " + ".join(
        f"{name}:{count}" for name, count in sorted(b["rerun_stages"].items())
    )
    lines = [
        "",
        f"books: accepted {b['accepted']} + rerun {b['rerun']} "
        f"[{splits or 'none'}] + degraded {b['degraded']} + failed "
        f"{b['failed']} == submitted {b['submitted']}: "
        f"{'OK' if b['balanced'] else 'IMBALANCED'}",
        f"arrivals: {report.attempted} attempted, {report.refused} refused at "
        f"the door, {report.settled_ok} answered, {report.settled_err} errored "
        f"({report.terminal_fraction:.1%} terminal)",
        f"SLO: {report.violation_windows}/{len(report.windows)} windows in "
        f"violation ({report.violation_seconds:.2f}s), {report.actions_taken} "
        f"scaler actions, final pool {report.final_workers or 'serial'}, "
        f"{'recovered' if report.recovered else 'NOT RECOVERED'}",
    ]
    if report.fault_plan_path:
        injected = {k: v for k, v in report.fault_log.items() if v}
        lines.append(
            f"chaos: plan {report.fault_plan_path}, injected {injected or 'none'}"
        )
    return table + "\n".join(lines)
