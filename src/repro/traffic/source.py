"""Live traffic from the synthetic video pipeline.

:class:`VideoTrafficSource` turns the ``repro.stream`` front-end
(:class:`~repro.stream.SyntheticVideo` frames → ROI detection → 32x32
crops, the same path :class:`~repro.stream.VideoCascade` classifies
in-process) into an open-loop workload: every detected ROI becomes one
:class:`~repro.traffic.trace.ArrivalEvent` stamped at its frame's
presentation time, and the normalized crops become the payload bank the
:class:`~repro.traffic.replay.TraceReplayer` binds at playback.

This is the trace engine's "real" load shape — frame-synchronous
batches whose size swings with how many objects the detector finds —
as opposed to the analytic shapes in :mod:`repro.traffic.generators`.
Because the video, the detector, and the crop extraction are all
seed-deterministic, the resulting ``(trace, payloads)`` pair is too.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import normalize_to_pm1
from ..stream.roi import RoiConfig, detect_rois, extract_patches
from ..stream.video import SyntheticVideo
from .trace import ArrivalEvent, ArrivalTrace

__all__ = ["VideoTrafficSource"]


class VideoTrafficSource:
    """Derive an arrival trace + payload bank from a synthetic video.

    Parameters
    ----------
    video:
        Frame source; a default :class:`SyntheticVideo` seeded with
        *seed* is built when omitted.
    fps:
        Presentation rate — frame ``i``'s ROIs all arrive at ``i / fps``
        (simultaneous arrivals are legal; traces are non-decreasing).
    roi_config, patch_size:
        Detector tuning, as in :class:`~repro.stream.VideoCascade`.
    normalize:
        When true (default) payloads are ``[-1, 1]``-normalized crops
        ready for a BNN front stage; otherwise raw ``[0, 1]`` pixels.
    repeat_frames:
        Hold factor: each frame's crops are re-emitted this many times
        at consecutive presentation slots, *referencing the same payload
        index*.  Synthetic video adds per-frame sensor noise, so without
        a hold no two crops are byte-identical; ``repeat_frames=3``
        models a camera whose effective content rate is a third of its
        frame rate and gives a trace with an exact duplicate fraction of
        ``(repeat_frames - 1) / repeat_frames`` — the knob the
        content-addressed cache benchmark (``docs/TENANCY.md``) turns.
    """

    def __init__(
        self,
        video: SyntheticVideo | None = None,
        fps: float = 30.0,
        roi_config: RoiConfig | None = None,
        patch_size: int = 32,
        normalize: bool = True,
        seed: int = 0,
        repeat_frames: int = 1,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        if repeat_frames < 1:
            raise ValueError("repeat_frames must be >= 1")
        self.video = video if video is not None else SyntheticVideo(seed=seed)
        self.fps = float(fps)
        self.roi_config = roi_config or RoiConfig()
        self.patch_size = patch_size
        self.normalize = normalize
        self.seed = seed
        self.repeat_frames = int(repeat_frames)

    def build(self, num_frames: int) -> tuple[ArrivalTrace, list[np.ndarray]]:
        """Consume *num_frames* and return ``(trace, payloads)``.

        ``payloads[k]`` is the crop event ``k`` refers to.  Payload refs
        are unique unless ``repeat_frames > 1``, in which case each held
        re-emission points at the *same* payload index — exact duplicate
        submissions by construction.
        """
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        events: list[ArrivalEvent] = []
        payloads: list[np.ndarray] = []
        slot = 0
        for frame in self.video.frames(num_frames):
            boxes = detect_rois(frame.pixels, self.roi_config)
            patches = extract_patches(frame.pixels, boxes, self.patch_size)
            if self.normalize and patches.shape[0]:
                patches = normalize_to_pm1(patches)
            refs = []
            for patch in patches:
                refs.append(len(payloads))
                payloads.append(patch)
            for _ in range(self.repeat_frames):
                t = slot / self.fps
                slot += 1
                for ref in refs:
                    events.append(ArrivalEvent(t, ref))
        trace = ArrivalTrace(events=tuple(events), name="video", seed=self.seed)
        return trace, payloads
