"""Open-loop, trace-driven traffic engine (ROADMAP open item 3).

Seeded arrival traces (:mod:`repro.traffic.trace`), the shape generators
that build them (:mod:`repro.traffic.generators`), an open-loop replayer
that fires them at any ``submit() -> Future`` backend
(:mod:`repro.traffic.replay`), a synthetic-video live source
(:mod:`repro.traffic.source`), and the ``repro serve-load`` harness that
drives a cascade + :class:`repro.serve.SLOAutoscaler` under them
(:mod:`repro.traffic.bench`).  See ``docs/TRAFFIC.md``.
"""

from .bench import (
    ServeLoadConfig,
    ServeLoadReport,
    WindowStat,
    format_serve_load,
    oracle_load_stack,
    run_serve_load,
)
from .generators import (
    TRACE_SHAPES,
    bursty_trace,
    constant_trace,
    diurnal_trace,
    flash_crowd_trace,
    make_trace,
    poisson_trace,
)
from .replay import ReplayedRequest, ReplayHandle, ReplayResult, TraceReplayer
from .source import VideoTrafficSource
from .trace import (
    TRACE_FORMAT_VERSION,
    ArrivalEvent,
    ArrivalTrace,
    TraceFormatError,
    load_trace,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TRACE_SHAPES",
    "ArrivalEvent",
    "ArrivalTrace",
    "TraceFormatError",
    "load_trace",
    "constant_trace",
    "poisson_trace",
    "diurnal_trace",
    "bursty_trace",
    "flash_crowd_trace",
    "make_trace",
    "TraceReplayer",
    "ReplayResult",
    "ReplayedRequest",
    "ReplayHandle",
    "VideoTrafficSource",
    "ServeLoadConfig",
    "ServeLoadReport",
    "WindowStat",
    "oracle_load_stack",
    "run_serve_load",
    "format_serve_load",
]
