"""Seeded arrival-shape generators: constant, Poisson, diurnal, bursty, flash.

Each generator materializes one :class:`~repro.traffic.trace.ArrivalTrace`
from a seed — all randomness flows through one ``numpy`` generator keyed
on that seed, so the same call produces a byte-identical trace file (the
determinism contract ``tests/traffic`` pins).

The shapes map to the serving regimes the SLO control plane must
survive (``docs/TRAFFIC.md``):

* ``constant``  — the closed-loop serve-bench regime, for baselines.
* ``poisson``   — memoryless arrivals at a fixed rate; the queueing
  behaviour Eq. (1) silently assumes away.
* ``diurnal``   — a sinusoidal day/night rate swing (inhomogeneous
  Poisson via Lewis-Shedler thinning); the autoscaler should track it
  with slow worker-count changes.
* ``bursty``    — an on/off modulated process (camera panning past a
  crowd): short windows at a multiple of the base rate.
* ``flash_crowd`` — a step to many times the base rate with exponential
  decay back down; the canonical p99-SLO kill test.

``payload_ref`` is assigned round-robin over ``num_payloads`` bank slots
so replay touches every payload deterministically regardless of shape.
"""

from __future__ import annotations

import math

import numpy as np

from .trace import ArrivalEvent, ArrivalTrace

__all__ = [
    "TRACE_SHAPES",
    "constant_trace",
    "poisson_trace",
    "diurnal_trace",
    "bursty_trace",
    "flash_crowd_trace",
    "make_trace",
]


def _finish(name: str, seed: int, offsets: list[float], num_payloads: int) -> ArrivalTrace:
    if num_payloads < 1:
        raise ValueError("num_payloads must be >= 1")
    events = tuple(
        ArrivalEvent(t, i % num_payloads) for i, t in enumerate(offsets)
    )
    return ArrivalTrace(events=events, name=name, seed=seed)


def _check(rate: float, duration: float) -> None:
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")


def constant_trace(
    rate: float, duration: float, seed: int = 0, num_payloads: int = 1
) -> ArrivalTrace:
    """Evenly spaced arrivals at *rate* events/s for *duration* seconds."""
    _check(rate, duration)
    n = int(math.floor(rate * duration))
    offsets = [i / rate for i in range(n)]
    return _finish("constant", seed, offsets, num_payloads)


def poisson_trace(
    rate: float, duration: float, seed: int = 0, num_payloads: int = 1
) -> ArrivalTrace:
    """Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival gaps."""
    _check(rate, duration)
    rng = np.random.default_rng(seed)
    offsets: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        offsets.append(t)
    return _finish("poisson", seed, offsets, num_payloads)


def _thinned(
    name: str,
    rate_fn,
    peak_rate: float,
    duration: float,
    seed: int,
    num_payloads: int,
) -> ArrivalTrace:
    """Inhomogeneous Poisson via Lewis-Shedler thinning at *peak_rate*."""
    rng = np.random.default_rng(seed)
    offsets: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak_rate))
        if t >= duration:
            break
        # One uniform per candidate, drawn unconditionally, keeps the
        # stream position a pure function of the candidate index.
        u = float(rng.random())
        if u * peak_rate < rate_fn(t):
            offsets.append(t)
    return _finish(name, seed, offsets, num_payloads)


def diurnal_trace(
    base_rate: float,
    peak_rate: float,
    duration: float,
    period: float | None = None,
    seed: int = 0,
    num_payloads: int = 1,
) -> ArrivalTrace:
    """Sinusoidal rate swing between *base_rate* and *peak_rate*.

    One full day/night cycle spans *period* seconds (default: the whole
    *duration*), starting at the trough so short traces show the ramp-up.
    """
    _check(base_rate, duration)
    if peak_rate < base_rate:
        raise ValueError("peak_rate must be >= base_rate")
    period = duration if period is None else period
    if period <= 0:
        raise ValueError("period must be positive")
    mid = (base_rate + peak_rate) / 2.0
    amplitude = (peak_rate - base_rate) / 2.0

    def rate_fn(t: float) -> float:
        return mid - amplitude * math.cos(2.0 * math.pi * t / period)

    return _thinned("diurnal", rate_fn, peak_rate, duration, seed, num_payloads)


def bursty_trace(
    base_rate: float,
    burst_rate: float,
    duration: float,
    burst_every: float = 1.0,
    burst_duration: float = 0.25,
    seed: int = 0,
    num_payloads: int = 1,
) -> ArrivalTrace:
    """On/off modulation: *burst_rate* windows riding on a *base_rate* floor.

    Every *burst_every* seconds the rate steps to *burst_rate* for
    *burst_duration* seconds, then falls back — sustained camera-style
    bursts rather than one catastrophe.
    """
    _check(base_rate, duration)
    if burst_rate < base_rate:
        raise ValueError("burst_rate must be >= base_rate")
    if burst_every <= 0 or burst_duration <= 0 or burst_duration > burst_every:
        raise ValueError("need 0 < burst_duration <= burst_every")

    def rate_fn(t: float) -> float:
        return burst_rate if (t % burst_every) < burst_duration else base_rate

    return _thinned("bursty", rate_fn, burst_rate, duration, seed, num_payloads)


def flash_crowd_trace(
    base_rate: float,
    flash_rate: float,
    duration: float,
    flash_at: float = 0.25,
    decay: float = 2.0,
    seed: int = 0,
    num_payloads: int = 1,
) -> ArrivalTrace:
    """A flash crowd: step to *flash_rate* at *flash_at*, decay back down.

    ``flash_at`` is a fraction of *duration*; after the step the excess
    rate decays exponentially with time constant ``duration / (4 *
    decay)``, so larger *decay* means a sharper spike.
    """
    _check(base_rate, duration)
    if flash_rate < base_rate:
        raise ValueError("flash_rate must be >= base_rate")
    if not 0.0 <= flash_at < 1.0:
        raise ValueError("flash_at must be in [0, 1)")
    if decay <= 0:
        raise ValueError("decay must be positive")
    t_flash = flash_at * duration
    tau = duration / (4.0 * decay)

    def rate_fn(t: float) -> float:
        if t < t_flash:
            return base_rate
        return base_rate + (flash_rate - base_rate) * math.exp(-(t - t_flash) / tau)

    return _thinned("flash", rate_fn, flash_rate, duration, seed, num_payloads)


#: Named shapes the CLI accepts (``repro serve-load --trace <shape>``);
#: each maps ``(rate, duration, seed, num_payloads)`` to a trace using
#: the shape's default modulation parameters.
TRACE_SHAPES = {
    "constant": lambda rate, duration, seed, num_payloads: constant_trace(
        rate, duration, seed=seed, num_payloads=num_payloads
    ),
    "poisson": lambda rate, duration, seed, num_payloads: poisson_trace(
        rate, duration, seed=seed, num_payloads=num_payloads
    ),
    "diurnal": lambda rate, duration, seed, num_payloads: diurnal_trace(
        base_rate=rate * 0.5,
        peak_rate=rate * 1.5,
        duration=duration,
        seed=seed,
        num_payloads=num_payloads,
    ),
    "burst": lambda rate, duration, seed, num_payloads: bursty_trace(
        base_rate=rate * 0.6,
        burst_rate=rate * 2.5,
        duration=duration,
        burst_every=max(duration / 4.0, 1e-3),
        burst_duration=max(duration / 16.0, 5e-4),
        seed=seed,
        num_payloads=num_payloads,
    ),
    "flash": lambda rate, duration, seed, num_payloads: flash_crowd_trace(
        base_rate=rate * 0.6,
        flash_rate=rate * 4.0,
        duration=duration,
        flash_at=0.25,
        seed=seed,
        num_payloads=num_payloads,
    ),
}


def make_trace(
    shape: str, rate: float, duration: float, seed: int = 0, num_payloads: int = 1
) -> ArrivalTrace:
    """Build a named shape (see :data:`TRACE_SHAPES`) at a nominal rate."""
    try:
        builder = TRACE_SHAPES[shape]
    except KeyError:
        raise ValueError(
            f"unknown trace shape {shape!r}; choose from {sorted(TRACE_SHAPES)}"
        ) from None
    return builder(rate, duration, seed, num_payloads)
