"""FPGA device catalog.

The paper's board is the Xilinx ZC702, carrying the XC7Z020 Zynq-7000 SoC
(Artix-7 class programmable logic + dual-core ARM Cortex-A9).  Resource
counts below are the public XC7Z020 numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGADevice", "XC7Z020", "ZC702_CLOCK_HZ", "DEVICES"]


@dataclass(frozen=True)
class FPGADevice:
    """Programmable-logic resource budget of one device."""

    name: str
    bram_18k: int      # number of 18 Kbit block RAMs
    luts: int          # 6-input LUTs
    flip_flops: int
    dsp48: int

    def __post_init__(self):
        if min(self.bram_18k, self.luts, self.flip_flops, self.dsp48) <= 0:
            raise ValueError("resource counts must be positive")

    def bram_utilization(self, used: int) -> float:
        """Fraction of BRAM_18K used (may exceed 1 for infeasible designs)."""
        return used / self.bram_18k

    def lut_utilization(self, used: int) -> float:
        return used / self.luts

    def fits(self, bram: int, luts: int) -> bool:
        """Whether a design with the given usage fits on the device."""
        return bram <= self.bram_18k and luts <= self.luts


#: XC7Z020: 140 x 36Kb = 280 x 18Kb BRAM, 53200 LUTs, 106400 FFs, 220 DSPs.
XC7Z020 = FPGADevice(name="XC7Z020", bram_18k=280, luts=53200, flip_flops=106400, dsp48=220)

#: Smaller Zynq-7000 (e.g. on low-cost boards): too small for full CNV.
XC7Z010 = FPGADevice(name="XC7Z010", bram_18k=120, luts=17600, flip_flops=35200, dsp48=80)

#: Larger Zynq-7000 (ZC706 board): headroom for higher-PE configurations.
XC7Z045 = FPGADevice(name="XC7Z045", bram_18k=1090, luts=218600, flip_flops=437200, dsp48=900)

#: Zynq UltraScale+ (ZCU102 board) — the paper's future-work device class
#: (ARMv8 processing system with active NEON).
XCZU9EG = FPGADevice(name="XCZU9EG", bram_18k=1824, luts=274080, flip_flops=548160, dsp48=2520)

#: Programmable-logic clock used throughout the paper's experiments.
ZC702_CLOCK_HZ = 100_000_000

DEVICES = {d.name: d for d in (XC7Z010, XC7Z020, XC7Z045, XCZU9EG)}
