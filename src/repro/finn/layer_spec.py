"""Hardware-level layer descriptions of the FINN network.

A :class:`LayerSpec` carries exactly the feature sizes Section III-A of
the paper enumerates for each engine:

* convolution kernel ``K x K``;
* convolution input ``IH x IW x ID`` and output ``OH x OW x OD``;
* FC input ``ID`` and output ``OD``;
* total weight size (``OD x (K*K*ID)`` for conv, ``OD x ID`` for FC);
* threshold bit width (24-bit for the first stage, 16-bit for the rest,
  none for the last stage, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LayerSpec", "finn_cnv_specs"]


@dataclass(frozen=True)
class LayerSpec:
    """One FINN engine's workload description."""

    name: str
    kind: str                    # "conv" or "fc"
    out_channels: int            # OD
    in_channels: int             # ID
    kernel: int = 1              # K (1 for FC)
    in_height: int = 1           # IH
    in_width: int = 1            # IW
    out_height: int = 1          # OH
    out_width: int = 1           # OW
    threshold_bits: int | None = 16
    #: Operand precisions.  1/1 is the fully binarised paper configuration;
    #: higher values model the paper's future-work "mixed precision on the
    #: FPGA" via bit-serial decomposition (each extra bit multiplies the
    #: MAC work and the weight storage).
    weight_bits: int = 1
    activation_bits: int = 1

    def __post_init__(self):
        if self.kind not in ("conv", "fc"):
            raise ValueError(f"kind must be 'conv' or 'fc', got {self.kind!r}")
        if min(self.out_channels, self.in_channels, self.kernel) <= 0:
            raise ValueError("layer dimensions must be positive")
        if self.threshold_bits is not None and self.threshold_bits <= 0:
            raise ValueError("threshold_bits must be positive or None")
        if self.weight_bits <= 0 or self.activation_bits <= 0:
            raise ValueError("operand precisions must be positive")

    # -- paper Section III-A feature formulas --------------------------------
    @property
    def fan_in(self) -> int:
        """Weight-matrix columns: K*K*ID for conv, ID for FC."""
        return self.kernel * self.kernel * self.in_channels

    @property
    def weight_rows(self) -> int:
        """Weight-matrix rows (= OD)."""
        return self.out_channels

    @property
    def total_weight_bits(self) -> int:
        """Total weight storage: OD * fan-in * weight_bits."""
        return self.weight_rows * self.fan_in * self.weight_bits

    @property
    def threshold_levels(self) -> int:
        """Activation thresholds per channel: 2^activation_bits - 1."""
        return (1 << self.activation_bits) - 1

    @property
    def bit_serial_passes(self) -> int:
        """MAC work multiplier under bit-serial mixed precision."""
        return self.weight_bits * self.activation_bits

    @property
    def output_pixels(self) -> int:
        """OH * OW (1 for FC layers)."""
        return self.out_height * self.out_width

    @property
    def total_ops(self) -> int:
        """Single-bit MAC operations per image (= cycles at P = S = 1)."""
        return self.weight_rows * self.fan_in * self.output_pixels * self.bit_serial_passes

    def describe(self) -> str:
        if self.kind == "conv":
            return (
                f"{self.name}: {self.kernel}x{self.kernel}-conv-{self.out_channels} "
                f"({self.in_height}x{self.in_width}x{self.in_channels} -> "
                f"{self.out_height}x{self.out_width}x{self.out_channels})"
            )
        return f"{self.name}: FC-{self.out_channels} ({self.in_channels} -> {self.out_channels})"


def finn_cnv_specs(image_size: int = 32) -> list[LayerSpec]:
    """The nine engines of Table I at full width (no zero padding).

    The spatial flow for a 32x32 input is
    32 -> 30 -> 28 -> pool 14 -> 12 -> 10 -> pool 5 -> 3 -> 1.
    """
    channels = (64, 64, 128, 128, 256, 256)
    specs: list[LayerSpec] = []
    size = image_size
    in_ch = 3
    for idx, out_ch in enumerate(channels):
        out_size = size - 2  # 3x3 kernel, no padding
        if out_size <= 0:
            raise ValueError(f"image_size {image_size} too small for the CNV stack")
        specs.append(
            LayerSpec(
                name=f"conv{idx + 1}",
                kind="conv",
                out_channels=out_ch,
                in_channels=in_ch,
                kernel=3,
                in_height=size,
                in_width=size,
                out_height=out_size,
                out_width=out_size,
                threshold_bits=24 if idx == 0 else 16,
            )
        )
        size = out_size
        in_ch = out_ch
        if idx in (1, 3):  # pooling after conv2 and conv4
            size //= 2

    fc_in = in_ch * size * size
    specs.append(LayerSpec(name="fc1", kind="fc", out_channels=64, in_channels=fc_in))
    specs.append(LayerSpec(name="fc2", kind="fc", out_channels=64, in_channels=64))
    specs.append(
        LayerSpec(name="fc3", kind="fc", out_channels=64, in_channels=64, threshold_bits=None)
    )
    return specs
