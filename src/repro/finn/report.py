"""Per-engine hardware report for a balanced configuration.

Expands the Fig. 3/4 aggregates into the per-engine breakdown a hardware
engineer would read off the Vivado utilization report: folding, cycle
count, standalone rate, BRAM split (weights / thresholds / buffers) and
weight-storage efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import render_table
from .balance import BalanceResult
from .device import FPGADevice, XC7Z020, ZC702_CLOCK_HZ
from .resources import NetworkResources, network_resources

__all__ = ["EngineReportRow", "HardwareReport", "hardware_report"]


@dataclass(frozen=True)
class EngineReportRow:
    engine: str
    pe: int
    simd: int
    cycles: int
    standalone_fps: float
    weight_brams: int
    threshold_brams: int
    buffer_brams: int
    luts: int
    storage_efficiency: float
    is_bottleneck: bool


@dataclass
class HardwareReport:
    rows: list[EngineReportRow]
    resources: NetworkResources
    clock_hz: float

    def format(self) -> str:
        table = render_table(
            ["engine", "P", "S", "CC/img", "img/s alone", "W-BRAM", "T-BRAM",
             "buf-BRAM", "LUTs", "W-storage eff", ""],
            [
                [
                    r.engine,
                    r.pe,
                    r.simd,
                    r.cycles,
                    f"{r.standalone_fps:.0f}",
                    r.weight_brams,
                    r.threshold_brams,
                    r.buffer_brams,
                    r.luts,
                    f"{100 * r.storage_efficiency:.0f}%",
                    "<- bottleneck" if r.is_bottleneck else "",
                ]
                for r in self.rows
            ],
            title="Per-engine hardware report",
        )
        res = self.resources
        summary = (
            f"total: {res.total_pe} PEs, {res.total_brams} BRAM_18K "
            f"({100 * res.bram_utilization:.1f}% of {res.device.name}), "
            f"{int(res.total_luts)} LUTs ({100 * res.lut_utilization:.1f}%), "
            f"weight-storage efficiency {100 * res.storage_efficiency:.0f}%"
        )
        return table + "\n" + summary


def hardware_report(
    balance: BalanceResult,
    device: FPGADevice = XC7Z020,
    partitioned: bool = True,
    clock_hz: float = ZC702_CLOCK_HZ,
) -> HardwareReport:
    """Build the per-engine report for one balanced configuration."""
    resources = network_resources(list(balance.engines), device, partitioned)
    bottleneck = balance.bottleneck
    rows = []
    for engine_res in resources.engines:
        engine = engine_res.engine
        weight_brams = sum(a.brams for a in engine_res.weight_allocs)
        threshold_brams = sum(a.brams for a in engine_res.threshold_allocs)
        buffer_brams = engine_res.brams - weight_brams - threshold_brams
        allocated = engine_res.weight_bits_allocated
        rows.append(
            EngineReportRow(
                engine=engine.spec.name,
                pe=engine.pe,
                simd=engine.simd,
                cycles=engine.cycles_per_image,
                standalone_fps=clock_hz / engine.cycles_per_image,
                weight_brams=weight_brams,
                threshold_brams=threshold_brams,
                buffer_brams=buffer_brams,
                luts=int(engine_res.luts),
                storage_efficiency=(
                    engine_res.weight_bits_stored / allocated if allocated else 1.0
                ),
                is_bottleneck=engine is bottleneck,
            )
        )
    return HardwareReport(rows=rows, resources=resources, clock_hz=clock_hz)
