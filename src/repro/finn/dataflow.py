"""Streaming-dataflow performance model of a FINN pipeline.

"Expected" throughput is Eq. (5) applied to the bottleneck engine — the
number Vivado HLS's Analysis Perspective predicts.  "Obtained" throughput
additionally charges the overheads a real ZC702 run pays per image:

* DMA streaming of the raw 32x32x3 input image into the fabric
  (one byte per cycle over the AXI stream: 3072 cycles/image);
* FIFO/handshake overhead proportional to the bottleneck interval
  (a small calibrated fraction).

This reproduces the paper's Fig. 3 behaviour where expected and obtained
curves coincide for modest parallelism and diverge as the PE count grows
(the fixed per-image costs stop being negligible once the compute
interval shrinks toward them).
"""

from __future__ import annotations

from dataclasses import dataclass

from .balance import BalanceResult
from .device import ZC702_CLOCK_HZ

__all__ = ["PipelinePerformance", "evaluate_pipeline", "batch_latency_cycles"]

#: Cycles to stream one 32x32x3 8-bit image into the fabric (1 byte/cycle).
IMAGE_DMA_CYCLES = 32 * 32 * 3

#: Fractional FIFO/handshake overhead on the bottleneck initiation interval.
FIFO_OVERHEAD = 0.02

#: Extra fractional slowdown of low-parallelism configs after block
#: partitioning (the paper: "configurations with higher PE counts ...
#: retain their original obtained performance but the ones with lower
#: accelerations ... slow down").
PARTITION_SLOWDOWN = 0.03
PARTITION_SLOWDOWN_PE_THRESHOLD = 40


@dataclass(frozen=True)
class PipelinePerformance:
    """Throughput/latency summary of one balanced configuration."""

    expected_fps: float
    obtained_fps: float
    interval_cycles: int        # steady-state initiation interval per image
    latency_cycles: int         # single-image fill latency through the pipe
    clock_hz: float

    @property
    def seconds_per_image(self) -> float:
        """Steady-state per-image interval (t_bnn/img of Eq. (1))."""
        return 1.0 / self.obtained_fps


def _obtained_interval(result: BalanceResult, partitioned: bool) -> float:
    # The SDSoC data mover streams each image serially with the fabric
    # compute, so the DMA cycles add to the initiation interval instead of
    # hiding behind it.  This is negligible for slow configurations and
    # becomes the dominant loss once the compute interval shrinks toward
    # IMAGE_DMA_CYCLES — matching the paper's expected/obtained divergence
    # at high PE counts.
    interval = result.bottleneck_cycles * (1.0 + FIFO_OVERHEAD) + IMAGE_DMA_CYCLES
    if partitioned and result.total_pe < PARTITION_SLOWDOWN_PE_THRESHOLD:
        interval *= 1.0 + PARTITION_SLOWDOWN
    return interval


def evaluate_pipeline(
    result: BalanceResult,
    clock_hz: float = ZC702_CLOCK_HZ,
    partitioned: bool = False,
) -> PipelinePerformance:
    """Expected (Eq. (5)) and obtained throughput of a configuration."""
    expected = result.fps(clock_hz)
    interval = _obtained_interval(result, partitioned)
    obtained = clock_hz / interval
    latency = sum(e.cycles_per_image for e in result.engines) + IMAGE_DMA_CYCLES
    return PipelinePerformance(
        expected_fps=expected,
        obtained_fps=obtained,
        interval_cycles=int(round(interval)),
        latency_cycles=latency,
        clock_hz=clock_hz,
    )


def batch_latency_cycles(result: BalanceResult, batch_size: int) -> int:
    """Cycles to push a batch through the pipeline (ramp-up + streaming).

    The first image pays the full pipeline fill latency; each subsequent
    image adds one bottleneck interval — the standard pipelined-batch
    model, and the source of the paper's remark that larger batches
    amortize overheads slightly but raise per-image latency.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    fill = sum(e.cycles_per_image for e in result.engines) + IMAGE_DMA_CYCLES
    return fill + (batch_size - 1) * result.bottleneck_cycles
