"""Per-design resource estimation (BRAM + LUT) for a set of engines.

Combines the Section III-A memory geometry (P weight files + P threshold
files per engine) with the allocation policies of :mod:`repro.finn.memory`
and a calibrated LUT cost model for the XNOR-popcount-threshold datapath.

The LUT constants are a behavioural model, not a netlist: they are chosen
so that full-network utilizations land in the band the paper's Fig. 3/4
report (LUT 50-95%, BRAM 50-100% across the PE sweep), and are documented
here as the model's free parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import FPGADevice
from .engine import Engine
from .layer_spec import LayerSpec
from .memory import MemoryAllocation, allocate_memory

__all__ = ["EngineResources", "NetworkResources", "engine_resources", "network_resources"]

# -- LUT model constants (behavioural calibration) ---------------------------
_LUTS_PER_SIMD_LANE = 7.5       # XNOR + popcount-tree slice per SIMD bit
_LUTS_PER_PE = 110.0            # accumulator + threshold comparator per PE
_LUTS_PER_ENGINE = 420.0        # per-engine control / window generator
_LUTS_BASE = 14000.0            # SDSoC data movers, AXI interconnect, control

# -- BRAM infrastructure constants -------------------------------------------
#: RAMB18 used by the SDSoC port itself (AXI DMA double buffers, batch
#: staging FIFOs) independent of the engine configuration.
_BRAM_BASE_INFRA = 40
#: Depth of each inter-engine stream FIFO ("inter-layer stream buffers
#: increase BRAM pressure too", Section III-A).
_FIFO_DEPTH = 1024


@dataclass(frozen=True)
class EngineResources:
    """Resource usage of one engine instance."""

    engine: Engine
    weight_allocs: tuple[MemoryAllocation, ...]
    threshold_allocs: tuple[MemoryAllocation, ...]
    buffer_alloc: MemoryAllocation | None
    fifo_alloc: MemoryAllocation | None
    datapath_luts: float

    @property
    def brams(self) -> int:
        total = sum(a.brams for a in self.weight_allocs)
        total += sum(a.brams for a in self.threshold_allocs)
        if self.buffer_alloc is not None:
            total += self.buffer_alloc.brams
        if self.fifo_alloc is not None:
            total += self.fifo_alloc.brams
        return total

    @property
    def luts(self) -> float:
        total = self.datapath_luts
        total += sum(a.lutram_luts for a in self.weight_allocs)
        total += sum(a.lutram_luts for a in self.threshold_allocs)
        if self.buffer_alloc is not None:
            total += self.buffer_alloc.lutram_luts
        if self.fifo_alloc is not None:
            total += self.fifo_alloc.lutram_luts
        return total

    @property
    def weight_bits_stored(self) -> int:
        return sum(a.bits for a in self.weight_allocs)

    @property
    def weight_bits_allocated(self) -> int:
        return sum(a.allocated_bits for a in self.weight_allocs)


def _stream_buffer_geometry(spec: LayerSpec) -> tuple[int, int] | None:
    """Input sliding-window/line-buffer geometry for a conv engine.

    Conv engines buffer K rows of the input feature map.  The first layer
    carries 8-bit pixels (3 channels); inner layers carry 1-bit
    activations (ID bits per pixel).
    """
    if spec.kind != "conv":
        return None
    bits_per_pixel = spec.in_channels * (8 if spec.threshold_bits == 24 else 1)
    depth = spec.in_width * spec.kernel
    return depth, bits_per_pixel


def engine_resources(engine: Engine, partitioned: bool = False) -> EngineResources:
    """Allocate one engine's memories and estimate its datapath LUTs."""
    spec = engine.spec

    weight_allocs = tuple(
        allocate_memory(engine.weight_file_depth, engine.weight_file_width, partitioned)
        for _ in range(engine.pe)
    )
    if spec.threshold_bits is not None:
        threshold_allocs = tuple(
            allocate_memory(engine.threshold_file_depth, spec.threshold_bits, partitioned)
            for _ in range(engine.pe)
        )
    else:
        threshold_allocs = ()

    buffer_geom = _stream_buffer_geometry(spec)
    buffer_alloc = (
        allocate_memory(buffer_geom[0], buffer_geom[1], partitioned) if buffer_geom else None
    )
    # Output stream FIFO toward the next engine: P bits are produced per
    # cycle, so the FIFO word width equals P.  FIFOs are not candidates
    # for array partitioning (they are FIFO primitives, not arrays).
    fifo_alloc = allocate_memory(_FIFO_DEPTH, engine.pe, partitioned=False)

    datapath = (
        _LUTS_PER_ENGINE
        + engine.pe * _LUTS_PER_PE
        + engine.pe * engine.simd * _LUTS_PER_SIMD_LANE
    )
    return EngineResources(
        engine, weight_allocs, threshold_allocs, buffer_alloc, fifo_alloc, datapath
    )


@dataclass(frozen=True)
class NetworkResources:
    """Aggregate resources of a full engine pipeline on a device."""

    device: FPGADevice
    engines: tuple[EngineResources, ...]
    partitioned: bool

    @property
    def total_brams(self) -> int:
        return _BRAM_BASE_INFRA + sum(e.brams for e in self.engines)

    @property
    def total_luts(self) -> float:
        return _LUTS_BASE + sum(e.luts for e in self.engines)

    @property
    def bram_utilization(self) -> float:
        return self.device.bram_utilization(self.total_brams)

    @property
    def lut_utilization(self) -> float:
        return self.device.lut_utilization(self.total_luts)

    @property
    def total_pe(self) -> int:
        return sum(e.engine.pe for e in self.engines)

    @property
    def storage_efficiency(self) -> float:
        """Fraction of BRAM-allocated weight storage that holds real bits.

        Fraser et al. (cited by the paper) report ~22% for naive FINN
        allocations.
        """
        allocated = sum(e.weight_bits_allocated for e in self.engines)
        stored = sum(e.weight_bits_stored for e in self.engines)
        return stored / allocated if allocated else 0.0

    def fits(self) -> bool:
        return self.device.fits(self.total_brams, int(self.total_luts))


def network_resources(
    engines: list[Engine], device: FPGADevice, partitioned: bool = False
) -> NetworkResources:
    """Allocate every engine of a pipeline on ``device``."""
    return NetworkResources(
        device=device,
        engines=tuple(engine_resources(e, partitioned) for e in engines),
        partitioned=partitioned,
    )
