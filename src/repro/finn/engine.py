"""FINN compute engines: P processing elements x S SIMD lanes.

Implements the paper's Eqs. (3)-(5):

    CC_conv = OD/P * (K*K*ID)/S * OH * OW        (3)
    CC_fc   = OD/P * ID/S                        (4)
    FPS     = clock / CC                         (5)

"To avoid padding extra space to Weight and Threshold memories of a
layer, P and S should be selected from the divisors of the number of rows
and columns of measured total weight size of that layer" — the
constructor enforces exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layer_spec import LayerSpec

__all__ = ["Engine", "divisors", "valid_pe_counts", "valid_simd_counts"]


def divisors(n: int) -> list[int]:
    """All positive divisors of n, ascending."""
    if n <= 0:
        raise ValueError("n must be positive")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def valid_pe_counts(spec: LayerSpec, max_pe: int | None = None) -> list[int]:
    """PE counts that divide the weight-matrix rows (OD)."""
    out = divisors(spec.weight_rows)
    if max_pe is not None:
        out = [p for p in out if p <= max_pe]
    return out


def valid_simd_counts(spec: LayerSpec, max_simd: int | None = None) -> list[int]:
    """SIMD counts that divide the weight-matrix columns (K*K*ID)."""
    out = divisors(spec.fan_in)
    if max_simd is not None:
        out = [s for s in out if s <= max_simd]
    return out


@dataclass(frozen=True)
class Engine:
    """One layer engine with a chosen (P, S) folding."""

    spec: LayerSpec
    pe: int
    simd: int

    def __post_init__(self):
        if self.pe <= 0 or self.simd <= 0:
            raise ValueError("P and S must be positive")
        if self.spec.weight_rows % self.pe != 0:
            raise ValueError(
                f"{self.spec.name}: P={self.pe} does not divide OD={self.spec.weight_rows}"
            )
        if self.spec.fan_in % self.simd != 0:
            raise ValueError(
                f"{self.spec.name}: S={self.simd} does not divide fan-in={self.spec.fan_in}"
            )

    # -- Eqs. (3)-(4) ---------------------------------------------------------
    @property
    def cycles_per_image(self) -> int:
        """Clock cycles for this engine to produce all its activations.

        For the paper's fully binarised layers this is exactly Eq. (3)/(4);
        multi-bit operands (the future-work extension) multiply the count
        by ``weight_bits * activation_bits`` (bit-serial decomposition).
        """
        folds = (self.spec.weight_rows // self.pe) * (self.spec.fan_in // self.simd)
        return folds * self.spec.output_pixels * self.spec.bit_serial_passes

    # -- Eq. (5) ------------------------------------------------------------
    def fps(self, clock_hz: float) -> float:
        """Throughput if this engine were the whole pipeline's bottleneck."""
        return clock_hz / self.cycles_per_image

    # -- memory geometry (Section III-A) -----------------------------------
    @property
    def weight_file_depth(self) -> int:
        """Words per weight file: (rows * fan-in) / (P*S) entries.

        Each word packs S weights of ``weight_bits`` bits, so for the
        binarised case this is exactly the paper's "Total weight size /
        (P*S) arrays of S-bit values".
        """
        return (self.spec.weight_rows * self.spec.fan_in) // (self.pe * self.simd)

    @property
    def weight_file_width(self) -> int:
        """Bits per word of a weight file (= S * weight_bits)."""
        return self.simd * self.spec.weight_bits

    @property
    def threshold_file_depth(self) -> int:
        """Words per threshold file: OD/P entries x threshold levels."""
        return (self.spec.weight_rows // self.pe) * self.spec.threshold_levels

    @property
    def threshold_file_width(self) -> int | None:
        return self.spec.threshold_bits

    def describe(self) -> str:
        return (
            f"{self.spec.name}: P={self.pe} S={self.simd} "
            f"CC={self.cycles_per_image}"
        )
