"""BRAM allocation model (Vivado HLS behaviour + block array partitioning).

The paper's Fig. 3/Fig. 4 experiment hinges on two allocation behaviours:

1. **Naive allocation** — "For every memory allocation instance, BRAM
   utilisation is rounded to the next power of two for performance", and
   "every memory instance of over about 1 Kb is assigned to BRAMs
   (lower-capacity instances are assigned to LUTs and FFs)".
2. **Block array partitioning** — splitting one logical array into several
   blocks "prevents a large unused gap being appended to memory
   instances"; the paper reports a 15-18% BRAM drop.  "The smaller files
   using only a fraction of one BRAM cannot be improved."

This module implements both policies over the RAMB18 aspect-ratio table
(36x512, 18x1024, 9x2048, 4x4096, 2x8192, 1x16384).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RAMB18_MODES",
    "LUTRAM_THRESHOLD_BITS",
    "MemoryAllocation",
    "allocate_memory",
    "next_power_of_two",
    "best_partition_factor",
]

#: (word width, depth) configurations of one RAMB18 primitive.
RAMB18_MODES = ((36, 512), (18, 1024), (9, 2048), (4, 4096), (2, 8192), (1, 16384))

#: Instances at or below ~1 Kbit go to LUTRAM/FFs instead of BRAM.
LUTRAM_THRESHOLD_BITS = 1024

#: LUTs consumed per LUTRAM bit (RAM32-style distributed memory).
_LUTRAM_LUTS_PER_BIT = 1.0 / 32.0

#: Partition factors explored by the block-partitioning optimizer.
_MAX_PARTITION_FACTOR = 8


def next_power_of_two(n: int) -> int:
    if n <= 0:
        raise ValueError("n must be positive")
    return 1 << (n - 1).bit_length()


def _brams_for(depth: int, width: int) -> int:
    """Minimum RAMB18 count for a memory of exact geometry depth x width."""
    best = None
    for mode_width, mode_depth in RAMB18_MODES:
        count = -(-width // mode_width) * -(-depth // mode_depth)
        if best is None or count < best:
            best = count
    return best


@dataclass(frozen=True)
class MemoryAllocation:
    """Result of allocating one logical memory instance."""

    depth: int
    width: int
    brams: int
    lutram_luts: float
    partitions: int  # 1 = unpartitioned

    @property
    def bits(self) -> int:
        return self.depth * self.width

    @property
    def allocated_bits(self) -> int:
        """Physical storage claimed (18 Kbit per BRAM, exact for LUTRAM)."""
        return self.brams * 18 * 1024 if self.brams else self.bits

    @property
    def storage_efficiency(self) -> float:
        """Fraction of allocated storage actually holding data."""
        return self.bits / self.allocated_bits if self.allocated_bits else 0.0


def _naive_brams(depth: int, width: int) -> int:
    """Vivado HLS default: depth rounded up to the next power of two."""
    return _brams_for(next_power_of_two(depth), width)


def best_partition_factor(depth: int, width: int) -> tuple[int, int]:
    """(factor, brams) minimizing BRAMs under block array partitioning.

    Each of the ``k`` blocks holds ``ceil(depth / k)`` words and is
    allocated with the same naive power-of-two policy.  Per the paper,
    partitioning only helps "files taking up multiple BRAMs; the smaller
    files using only a fraction of one BRAM cannot be improved", so
    single-BRAM instances are returned unchanged and blocks are kept in
    BRAM (no escape to LUTRAM).
    """
    naive = _naive_brams(depth, width)
    if naive <= 1:
        return 1, naive
    best_k, best_brams = 1, naive
    for k in range(2, min(_MAX_PARTITION_FACTOR, depth) + 1):
        block_depth = -(-depth // k)
        if block_depth * width <= LUTRAM_THRESHOLD_BITS:
            continue
        candidate = k * _naive_brams(block_depth, width)
        if candidate < best_brams:
            best_k, best_brams = k, candidate
    return best_k, best_brams


def allocate_memory(depth: int, width: int, partitioned: bool = False) -> MemoryAllocation:
    """Allocate one logical memory of ``depth`` words x ``width`` bits.

    Parameters
    ----------
    depth, width:
        Logical geometry.
    partitioned:
        Apply block array partitioning (the Fig. 4 optimization).
    """
    if depth <= 0 or width <= 0:
        raise ValueError("depth and width must be positive")
    bits = depth * width
    if bits <= LUTRAM_THRESHOLD_BITS:
        return MemoryAllocation(depth, width, 0, bits * _LUTRAM_LUTS_PER_BIT, 1)
    if not partitioned:
        return MemoryAllocation(depth, width, _naive_brams(depth, width), 0.0, 1)
    factor, brams = best_partition_factor(depth, width)
    if brams == 0:
        return MemoryAllocation(depth, width, 0, bits * _LUTRAM_LUTS_PER_BIT, factor)
    return MemoryAllocation(depth, width, brams, 0.0, factor)
