"""Mixed-precision network variants (the paper's future work).

"Our future work aims at ... considering use of mixed precision on the
FPGA hardware as well."  This module derives multi-bit variants of a
layer-spec list under the bit-serial execution model: each extra weight or
activation bit multiplies the MAC work (Eq. (3)/(4) cycles) and the
weight/threshold storage accordingly.
"""

from __future__ import annotations

from dataclasses import replace

from .layer_spec import LayerSpec

__all__ = ["with_precision", "precision_ladder"]


def with_precision(
    specs: list[LayerSpec],
    weight_bits: int = 1,
    activation_bits: int = 1,
    first_layer_activation_bits: int | None = None,
) -> list[LayerSpec]:
    """Return copies of ``specs`` at the given operand precisions.

    ``first_layer_activation_bits`` models the common partially-binarised
    arrangement where the first layer consumes full-precision pixels (the
    paper: "The first layer of the network receives non-binarised image
    inputs hence requiring regular operations").
    """
    if weight_bits <= 0 or activation_bits <= 0:
        raise ValueError("precisions must be positive")
    out = []
    for i, spec in enumerate(specs):
        act = activation_bits
        if i == 0 and first_layer_activation_bits is not None:
            act = first_layer_activation_bits
        out.append(replace(spec, weight_bits=weight_bits, activation_bits=act))
    return out


def precision_ladder(
    specs: list[LayerSpec], precisions: list[tuple[int, int]] | None = None
) -> dict[str, list[LayerSpec]]:
    """Standard (weight_bits, activation_bits) ladder for ablations."""
    precisions = precisions or [(1, 1), (1, 2), (2, 2), (4, 4), (8, 8)]
    return {
        f"W{w}A{a}": with_precision(specs, w, a) for w, a in precisions
    }
