"""Design-rule checks for FINN configurations.

Validates a balanced configuration against a target device and returns a
structured diagnostic list instead of a bare boolean — the checks a
hardware engineer runs before committing to a synthesis:

* resource fit (BRAM / LUT budgets, with a routing-headroom warning band);
* folding legality (P | OD, S | fan-in — re-verified end to end);
* rate balance quality (how far each engine sits from the bottleneck);
* throughput sanity versus a required frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .balance import BalanceResult
from .dataflow import evaluate_pipeline
from .device import FPGADevice, XC7Z020, ZC702_CLOCK_HZ
from .resources import network_resources

__all__ = ["Severity", "Diagnostic", "DesignCheck", "check_design"]

#: Utilization above which routing/closure risk is flagged.
_WARN_UTILIZATION = 0.85


class Severity(Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: str
    message: str


@dataclass
class DesignCheck:
    """Outcome of :func:`check_design`."""

    diagnostics: list[Diagnostic]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the design has no errors (warnings allowed)."""
        return not self.errors

    def format(self) -> str:
        if not self.diagnostics:
            return "design check: clean"
        lines = ["design check:"]
        for d in self.diagnostics:
            lines.append(f"  [{d.severity.value:7s}] {d.code}: {d.message}")
        return "\n".join(lines)


def check_design(
    balance: BalanceResult,
    device: FPGADevice = XC7Z020,
    partitioned: bool = True,
    clock_hz: float = ZC702_CLOCK_HZ,
    required_fps: float | None = None,
    imbalance_tolerance: float = 4.0,
) -> DesignCheck:
    """Run all design-rule checks on a balanced configuration."""
    diags: list[Diagnostic] = []

    # -- resource fit -----------------------------------------------------
    res = network_resources(list(balance.engines), device, partitioned)
    for name, used, budget in (
        ("BRAM", res.total_brams, device.bram_18k),
        ("LUT", int(res.total_luts), device.luts),
    ):
        fraction = used / budget
        if fraction > 1.0:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    f"{name.lower()}-overflow",
                    f"{name} demand {used} exceeds {device.name} budget {budget} "
                    f"({100 * fraction:.0f}%)",
                )
            )
        elif fraction > _WARN_UTILIZATION:
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    f"{name.lower()}-pressure",
                    f"{name} utilization {100 * fraction:.0f}% risks placement/routing "
                    "failure",
                )
            )

    # -- folding legality (defence in depth; Engine enforces it too) -------
    for engine in balance.engines:
        if engine.spec.weight_rows % engine.pe or engine.spec.fan_in % engine.simd:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "illegal-folding",
                    f"{engine.spec.name}: P={engine.pe}, S={engine.simd} do not divide "
                    f"the weight matrix {engine.spec.weight_rows}x{engine.spec.fan_in}",
                )
            )

    # -- rate balance -------------------------------------------------------
    bottleneck = balance.bottleneck_cycles
    for engine in balance.engines:
        slack = bottleneck / engine.cycles_per_image
        if slack > imbalance_tolerance:
            diags.append(
                Diagnostic(
                    Severity.INFO,
                    "over-provisioned",
                    f"{engine.spec.name} is {slack:.1f}x faster than the bottleneck; "
                    "its P*S could be reduced to free resources",
                )
            )

    # -- throughput ---------------------------------------------------------
    if required_fps is not None:
        perf = evaluate_pipeline(balance, clock_hz, partitioned)
        if perf.obtained_fps < required_fps:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "throughput-shortfall",
                    f"obtained {perf.obtained_fps:.0f} img/s is below the required "
                    f"{required_fps:.0f} img/s",
                )
            )
    return DesignCheck(diagnostics=diags)
