"""Analytical FINN FPGA hardware model.

Implements the paper's Section III-A machinery: engine cycle counts
(Eqs. (3)-(4)), throughput (Eq. (5)), the rate balancer, the Vivado BRAM
allocation behaviour with and without block array partitioning
(Figs. 3-4), and LUT estimation on the ZC702's XC7Z020 device.
"""

from .balance import BalanceResult, balance_layer, balance_network, sweep_targets
from .dataflow import (
    IMAGE_DMA_CYCLES,
    PipelinePerformance,
    batch_latency_cycles,
    evaluate_pipeline,
)
from .device import DEVICES, XC7Z020, ZC702_CLOCK_HZ, FPGADevice
from .drc import DesignCheck, Diagnostic, Severity, check_design
from .engine import Engine, divisors, valid_pe_counts, valid_simd_counts
from .layer_spec import LayerSpec, finn_cnv_specs
from .mixed_precision import precision_ladder, with_precision
from .memory import (
    LUTRAM_THRESHOLD_BITS,
    RAMB18_MODES,
    MemoryAllocation,
    allocate_memory,
    best_partition_factor,
    next_power_of_two,
)
from .report import EngineReportRow, HardwareReport, hardware_report
from .resources import (
    EngineResources,
    NetworkResources,
    engine_resources,
    network_resources,
)

__all__ = [
    "FPGADevice",
    "XC7Z020",
    "ZC702_CLOCK_HZ",
    "DEVICES",
    "LayerSpec",
    "finn_cnv_specs",
    "with_precision",
    "precision_ladder",
    "Engine",
    "divisors",
    "valid_pe_counts",
    "valid_simd_counts",
    "MemoryAllocation",
    "allocate_memory",
    "best_partition_factor",
    "next_power_of_two",
    "RAMB18_MODES",
    "LUTRAM_THRESHOLD_BITS",
    "EngineResources",
    "NetworkResources",
    "engine_resources",
    "network_resources",
    "BalanceResult",
    "balance_layer",
    "balance_network",
    "sweep_targets",
    "PipelinePerformance",
    "evaluate_pipeline",
    "batch_latency_cycles",
    "IMAGE_DMA_CYCLES",
    "EngineReportRow",
    "HardwareReport",
    "hardware_report",
    "DesignCheck",
    "Diagnostic",
    "Severity",
    "check_design",
]
