"""Rate balancing of the heterogeneous streaming pipeline.

"In order to maximise the throughput, it is necessary to rate-balance the
heterogeneous streaming network layers. ... for a rough balance of all
the layers and given one desired latency (in CC), (3) or (4) should be
assessed for each layer to find a combination of P and S for that layer
satisfying the equation."  (Section III-A)

For each layer the balancer picks the cheapest legal folding —
(P, S) with P | OD and S | fan-in — whose cycle count meets the target,
minimizing P*S (compute cost) and, at equal P*S, minimizing P (each PE
owns private weight/threshold files, so fewer PEs means fewer fragmented
memories).
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import Engine, valid_pe_counts, valid_simd_counts
from .layer_spec import LayerSpec

__all__ = ["BalanceResult", "balance_layer", "balance_network", "sweep_targets"]

#: Hardware bounds on the folding.  MAX_SIMD=16 reflects the SDSoC port's
#: stream interface width; it also reproduces the paper's total-PE range
#: (their 430 img/s configuration uses 32 PEs, which is only reachable
#: with modest SIMD widths — at SIMD 64 the same throughput needs ~17 PEs).
MAX_PE = 64
MAX_SIMD = 16


@dataclass(frozen=True)
class BalanceResult:
    """A balanced full-network configuration."""

    engines: tuple[Engine, ...]
    target_cycles: int

    @property
    def bottleneck_cycles(self) -> int:
        return max(e.cycles_per_image for e in self.engines)

    @property
    def bottleneck(self) -> Engine:
        return max(self.engines, key=lambda e: e.cycles_per_image)

    @property
    def total_pe(self) -> int:
        """Total PE count, the x-axis of the paper's Figs. 3-4."""
        return sum(e.pe for e in self.engines)

    def fps(self, clock_hz: float) -> float:
        """Expected steady-state throughput, Eq. (5) on the worst layer."""
        return clock_hz / self.bottleneck_cycles


def balance_layer(
    spec: LayerSpec,
    target_cycles: int,
    max_pe: int = MAX_PE,
    max_simd: int = MAX_SIMD,
) -> Engine:
    """Cheapest legal (P, S) folding meeting ``target_cycles`` for one layer.

    If no legal folding meets the target (layer too large even at max
    parallelism), the fastest legal folding is returned instead — the
    layer then becomes the network bottleneck, exactly as on hardware.
    """
    if target_cycles <= 0:
        raise ValueError("target_cycles must be positive")
    best: Engine | None = None
    fastest: Engine | None = None
    for p in valid_pe_counts(spec, max_pe):
        for s in valid_simd_counts(spec, max_simd):
            engine = Engine(spec, p, s)
            if fastest is None or engine.cycles_per_image < fastest.cycles_per_image:
                fastest = engine
            if engine.cycles_per_image <= target_cycles:
                if (
                    best is None
                    or p * s < best.pe * best.simd
                    or (p * s == best.pe * best.simd and p < best.pe)
                ):
                    best = engine
    if best is not None:
        return best
    assert fastest is not None  # every spec has the (1, 1) folding
    return fastest


def balance_network(
    specs: list[LayerSpec],
    target_cycles: int,
    max_pe: int = MAX_PE,
    max_simd: int = MAX_SIMD,
) -> BalanceResult:
    """Balance all layers of a network to one target latency."""
    engines = tuple(balance_layer(s, target_cycles, max_pe, max_simd) for s in specs)
    return BalanceResult(engines=engines, target_cycles=target_cycles)


def sweep_targets(
    specs: list[LayerSpec],
    target_fps_values: list[float],
    clock_hz: float,
    max_pe: int = MAX_PE,
    max_simd: int = MAX_SIMD,
) -> list[BalanceResult]:
    """Balance the network for a list of desired throughputs.

    Duplicate configurations (same engine foldings) are dropped, so the
    result mirrors the discrete design points of the paper's Fig. 3.
    """
    results: list[BalanceResult] = []
    seen: set[tuple[tuple[int, int], ...]] = set()
    for fps in target_fps_values:
        if fps <= 0:
            raise ValueError("target fps values must be positive")
        target_cycles = max(1, int(clock_hz / fps))
        result = balance_network(specs, target_cycles, max_pe, max_simd)
        key = tuple((e.pe, e.simd) for e in result.engines)
        if key not in seen:
            seen.add(key)
            results.append(result)
    return results
