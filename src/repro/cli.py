"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any table or figure of the paper from the terminal:

    python -m repro list
    python -m repro table1
    python -m repro fig3 fig4
    python -m repro table4 --train-budget full
    python -m repro all

Experiments that need trained networks share the on-disk workbench cache,
so only the first invocation pays the numpy training cost.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .experiments import (
    Workbench,
    WorkbenchConfig,
    chosen_configuration,
    fig34,
    fig5_table2,
    standard_sweep,
    table1,
    table3,
    table4,
    table5,
)
from .experiments.ablations import (
    format_ablations,
    run_batch_size_sweep,
    run_eq1_validation,
)

__all__ = ["main", "TRAIN_BUDGETS"]

#: Named training budgets for the functional experiments.
TRAIN_BUDGETS = {
    "micro": WorkbenchConfig(
        num_train=300, num_test=120, bnn_scale=0.1, host_scale=0.15,
        bnn_epochs=2, host_epochs=2,
    ),
    "bench": WorkbenchConfig(
        num_train=2400, num_test=600, bnn_epochs=10, host_epochs=18,
        bnn_scale=0.15, host_scale=0.25, host_lr=0.001,
        target_rerun_ratio=0.30,
    ),
    "full": WorkbenchConfig(),
}


def _needs_workbench(name: str) -> bool:
    return name in ("fig5", "table2", "table4", "table5")


def _run_one(name: str, workbench: Workbench | None) -> str:
    analytic: dict[str, Callable[[], str]] = {
        "table1": lambda: table1.run(chosen_configuration()).format(),
        "fig3": lambda: fig34.run_fig3(standard_sweep()).format(),
        "fig4": lambda: fig34.run_fig4(standard_sweep()).format(),
        "table3": lambda: table3.run().format(),
        "ablations": lambda: format_ablations(
            run_batch_size_sweep(), run_eq1_validation()
        ),
    }
    if name in analytic:
        return analytic[name]()
    assert workbench is not None
    trained: dict[str, Callable[[], str]] = {
        "fig5": lambda: fig5_table2.run_fig5(workbench).format(),
        "table2": lambda: fig5_table2.run_table2(workbench).format(),
        "table4": lambda: table4.run(workbench).format(),
        "table5": lambda: table5.run(workbench).format(),
    }
    return trained[name]()


EXPERIMENTS = ("table1", "fig3", "fig4", "fig5", "table2", "table3", "table4", "table5", "ablations")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the DATE'18 multi-precision CNN paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}), 'all', or 'list'",
    )
    parser.add_argument(
        "--train-budget",
        choices=sorted(TRAIN_BUDGETS),
        default="bench",
        help="training budget for experiments that need trained networks",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if names == ["list"]:
        print("available experiments:", ", ".join(EXPERIMENTS))
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    workbench = None
    if any(_needs_workbench(n) for n in names):
        workbench = Workbench(TRAIN_BUDGETS[args.train_budget])
        print(
            f"preparing workbench (budget={args.train_budget}; "
            "first run trains in numpy, later runs hit the cache) ...",
            file=sys.stderr,
        )
        workbench.prepare_all()

    for i, name in enumerate(names):
        if i:
            print()
        print(_run_one(name, workbench))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
