"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any table or figure of the paper from the terminal:

    python -m repro list
    python -m repro table1
    python -m repro fig3 fig4
    python -m repro table4 --train-budget full
    python -m repro all

Experiments that need trained networks share the on-disk workbench cache,
so only the first invocation pays the numpy training cost.

The serving layer has its own load-test subcommand:

    python -m repro serve-bench
    python -m repro serve-bench --target-rerun 0.25 --host-workers 2
    python -m repro serve-bench --measure-t-bnn 0.25 --bnn-backend bitplane
    python -m repro serve-bench --fault-plan examples/faultplan_host_flaky.json
    python -m repro serve-bench --ladder 0.002   # 3-stage precision ladder

and the binary-kernel backends have a benchmark harness:

    python -m repro bench-kernels
    python -m repro bench-kernels --smoke --output /tmp/BENCH_kernels.json

and the process-parallel host engine has its own harness:

    python -m repro bench-parallel
    python -m repro bench-parallel --model c --workers 1 2 4 --smoke

``repro trace`` records one served cascade run with the :mod:`repro.obs`
tracer and writes a Chrome trace-event timeline (Eq. (1) overlap made
visible, Eqs. (3)-(5) per-layer breakdown printed):

    python -m repro trace --output trace.json
    python -m repro trace --backend bitplane --simulated trace_sim.json

``repro serve-net`` stands up the socket stack (frontend + shard router
+ N cascade replica processes), drives it over loopback and reconciles
the wire books (see docs/NETWORK.md):

    python -m repro serve-net --replicas 2 --requests 200
    python -m repro serve-net --placement rendezvous --kill-replica-after 50
    python -m repro serve-net --fault-plan examples/faultplan_host_flaky.json
    python -m repro serve-net --ladder      # 3-stage ladder replicas

``repro serve-load`` replays a seeded open-loop arrival trace (flash
crowd, diurnal, ...) against the cascade while the SLO autoscaler holds
a p99 latency target (see docs/TRAFFIC.md):

    python -m repro serve-load --trace flash --slo-p99-ms 25
    python -m repro serve-load --trace poisson --time-scale 8
    python -m repro serve-load --trace path/to/trace.json --fault-plan ...

``repro serve-tenants`` serves two tenants (Model A + Model C) from one
DRR-scheduled shared host pool behind the content-addressed result
cache, replaying a held video trace twice (cold vs cached), and writes
``benchmarks/results/BENCH_cache.json`` (see docs/TENANCY.md):

    python -m repro serve-tenants
    python -m repro serve-tenants --repeat-frames 4 --cache-mb 16
    python -m repro serve-bench --cache-mb 32 --duplicate-fraction 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .experiments import (
    Workbench,
    WorkbenchConfig,
    chosen_configuration,
    fig34,
    fig5_table2,
    standard_sweep,
    table1,
    table3,
    table4,
    table5,
)
from .experiments.ablations import (
    format_ablations,
    run_batch_size_sweep,
    run_eq1_validation,
)

__all__ = ["main", "TRAIN_BUDGETS"]

#: Named training budgets for the functional experiments.
TRAIN_BUDGETS = {
    "micro": WorkbenchConfig(
        num_train=300, num_test=120, bnn_scale=0.1, host_scale=0.15,
        bnn_epochs=2, host_epochs=2,
    ),
    "bench": WorkbenchConfig(
        num_train=2400, num_test=600, bnn_epochs=10, host_epochs=18,
        bnn_scale=0.15, host_scale=0.25, host_lr=0.001,
        target_rerun_ratio=0.30,
    ),
    "full": WorkbenchConfig(),
}


def _needs_workbench(name: str) -> bool:
    return name in ("fig5", "table2", "table4", "table5")


def _run_one(name: str, workbench: Workbench | None) -> str:
    analytic: dict[str, Callable[[], str]] = {
        "table1": lambda: table1.run(chosen_configuration()).format(),
        "fig3": lambda: fig34.run_fig3(standard_sweep()).format(),
        "fig4": lambda: fig34.run_fig4(standard_sweep()).format(),
        "table3": lambda: table3.run().format(),
        "ablations": lambda: format_ablations(
            run_batch_size_sweep(), run_eq1_validation()
        ),
    }
    if name in analytic:
        return analytic[name]()
    assert workbench is not None
    trained: dict[str, Callable[[], str]] = {
        "fig5": lambda: fig5_table2.run_fig5(workbench).format(),
        "table2": lambda: fig5_table2.run_table2(workbench).format(),
        "table4": lambda: table4.run(workbench).format(),
        "table5": lambda: table5.run(workbench).format(),
    }
    return trained[name]()


EXPERIMENTS = ("table1", "fig3", "fig4", "fig5", "table2", "table3", "table4", "table5", "ablations")


def serve_bench_main(argv: list[str]) -> int:
    """``repro serve-bench``: load-test the concurrent cascade server."""
    from dataclasses import replace

    from .serve import ServeBenchConfig, format_serve_bench, run_serve_bench

    defaults = ServeBenchConfig()
    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description=(
            "Drive the concurrent cascade server under closed-loop load and "
            "compare the adaptive DMU-threshold controller against a naive "
            "static threshold and the Eq. (1) analytic bound."
        ),
    )
    parser.add_argument("--requests", type=int, default=defaults.num_requests)
    parser.add_argument("--clients", type=int, default=defaults.num_clients)
    parser.add_argument(
        "--target-rerun", type=float, default=defaults.target_rerun_ratio,
        help="rerun ratio the controller should hold (default %(default)s)",
    )
    parser.add_argument("--naive-threshold", type=float, default=defaults.naive_threshold)
    parser.add_argument("--t-fp", type=float, default=defaults.t_fp,
                        help="host seconds/image (default %(default)s)")
    parser.add_argument("--t-bnn", type=float, default=defaults.t_bnn,
                        help="BNN seconds/image (default %(default)s)")
    parser.add_argument("--batch-size", type=int, default=defaults.max_batch_size)
    parser.add_argument("--host-workers", type=int, default=defaults.num_host_workers)
    parser.add_argument(
        "--host-process-workers", type=int, default=None, metavar="N",
        help=(
            "shard the host stage across N processes via "
            "repro.parallel.ParallelHostRunner (Eq. (1) t_fp -> t_fp/N)"
        ),
    )
    parser.add_argument("--host-queue", type=int, default=defaults.host_queue_capacity)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--bnn-backend", default=None,
        help=(
            "binary-kernel backend for the BNN stage "
            "(reference/bitplane/threaded[@K[:TILE]]/lut64/auto)"
        ),
    )
    parser.add_argument(
        "--measure-t-bnn", type=float, default=None, metavar="SCALE",
        help=(
            "replace the constant --t-bnn with the measured seconds/image of the "
            "real folded CNV at this width scale under --bnn-backend"
        ),
    )
    parser.add_argument(
        "--measure-t-host", type=float, default=None, metavar="SCALE",
        help=(
            "replace the constant --t-fp with the measured seconds/image of the "
            "real host Model A inference fast path at this width scale, sharded "
            "over --host-process-workers processes"
        ),
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "record the adaptive leg with repro.obs and write a Chrome "
            "trace-event JSON (chrome://tracing / Perfetto) to PATH"
        ),
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help=(
            "chaos mode: inject the seeded repro.faults.FaultPlan JSON at PATH "
            "into the BNN/DMU/host stages of both legs "
            "(e.g. examples/faultplan_host_flaky.json)"
        ),
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; late requests degrade or fail (default: off)",
    )
    parser.add_argument(
        "--ladder", default=None, metavar="T1[,T2...]",
        help=(
            "bench an N-stage precision ladder: comma-separated middle-rung "
            "seconds/image between the BNN and the host (e.g. --ladder 0.002 "
            "for a 3-stage bnn -> mid1 -> host run); the report gains the "
            "Eq. (1N) per-stage terms and the per-stage books check"
        ),
    )
    parser.add_argument(
        "--ladder-target-forward", type=float, default=None, metavar="RATIO",
        help=(
            "per-hop target forward ratio for the ladder's adaptive leg "
            "(default: --target-rerun at every hop)"
        ),
    )
    parser.add_argument(
        "--cache-mb", type=float, default=0.0, metavar="MB",
        help=(
            "attach a content-addressed repro.cache result cache of this many "
            "MiB in front of each leg (docs/TENANCY.md); adds the hit-rate "
            "column and exits nonzero if the cache books don't reconcile"
        ),
    )
    parser.add_argument(
        "--duplicate-fraction", type=float, default=0.0, metavar="F",
        help=(
            "fraction of the request stream that repeats earlier requests' "
            "exact bytes — the duplicate mass a cache can win back"
        ),
    )
    args = parser.parse_args(argv)

    ladder_stage_times = None
    if args.ladder is not None:
        try:
            ladder_stage_times = tuple(
                float(part) for part in args.ladder.split(",") if part.strip()
            )
        except ValueError:
            parser.error(f"--ladder must be comma-separated floats, got {args.ladder!r}")
        if not ladder_stage_times:
            parser.error("--ladder needs at least one middle-rung time")
        if len(ladder_stage_times) > 4:
            parser.error("--ladder supports at most 4 middle rungs")
        if any(t <= 0 for t in ladder_stage_times):
            parser.error("--ladder stage times must be positive")
    if args.ladder_target_forward is not None and not (
        0.0 <= args.ladder_target_forward <= 1.0
    ):
        parser.error(
            f"--ladder-target-forward must be in [0, 1], got {args.ladder_target_forward}"
        )

    if not 0.0 <= args.target_rerun <= 1.0:
        parser.error(f"--target-rerun must be in [0, 1], got {args.target_rerun}")
    if not 0.0 <= args.naive_threshold <= 1.0:
        parser.error(f"--naive-threshold must be in [0, 1], got {args.naive_threshold}")
    if args.requests < 0:
        parser.error(f"--requests must be >= 0, got {args.requests}")
    for name in ("clients", "batch_size", "host_workers", "host_queue"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be >= 1")
    if args.t_fp <= 0 or args.t_bnn <= 0:
        parser.error("--t-fp and --t-bnn must be positive")
    if args.measure_t_bnn is not None and args.measure_t_bnn <= 0:
        parser.error("--measure-t-bnn scale must be positive")
    if args.measure_t_host is not None and args.measure_t_host <= 0:
        parser.error("--measure-t-host scale must be positive")
    if args.host_process_workers is not None and args.host_process_workers < 1:
        parser.error("--host-process-workers must be >= 1")
    if args.deadline is not None and args.deadline <= 0:
        parser.error("--deadline must be positive")
    if args.cache_mb < 0:
        parser.error("--cache-mb must be >= 0")
    if not 0.0 <= args.duplicate_fraction < 1.0:
        parser.error(
            f"--duplicate-fraction must be in [0, 1), got {args.duplicate_fraction}"
        )
    if args.fault_plan is not None:
        from pathlib import Path

        if not Path(args.fault_plan).is_file():
            parser.error(f"--fault-plan file not found: {args.fault_plan}")

    config = replace(
        ServeBenchConfig(),
        num_requests=args.requests,
        num_clients=args.clients,
        target_rerun_ratio=args.target_rerun,
        naive_threshold=args.naive_threshold,
        t_fp=args.t_fp,
        t_bnn=args.t_bnn,
        max_batch_size=args.batch_size,
        num_host_workers=args.host_workers,
        host_process_workers=args.host_process_workers,
        host_queue_capacity=args.host_queue,
        seed=args.seed,
        bnn_backend=args.bnn_backend,
        measured_bnn_scale=args.measure_t_bnn,
        measured_host_scale=args.measure_t_host,
        trace_path=args.trace,
        fault_plan_path=args.fault_plan,
        deadline_s=args.deadline,
        ladder_stage_times=ladder_stage_times,
        ladder_target_forward_ratio=args.ladder_target_forward,
        cache_max_bytes=int(args.cache_mb * 1024 * 1024),
        duplicate_fraction=args.duplicate_fraction,
    )
    print(
        f"serve-bench: 2 runs x {config.num_requests} requests, "
        f"{config.num_clients} closed-loop clients"
        + (
            f", {2 + len(ladder_stage_times)}-stage ladder"
            if ladder_stage_times
            else ""
        )
        + " ...",
        file=sys.stderr,
    )
    report = run_serve_bench(config)
    print(format_serve_bench(report))
    # Nonzero unless every leg's per-stage books balance — and, with a
    # cache attached, unless the cache's own books reconcile
    # (hits + misses == lookups): the CI smokes (and any scripted run)
    # hard-fail on lost/duplicated requests or miscounted lookups.
    return 0 if report.books_balanced and report.cache_books_balanced else 1


def serve_load_main(argv: list[str]) -> int:
    """``repro serve-load``: open-loop trace replay under the SLO autoscaler."""
    from .traffic import (
        TRACE_SHAPES,
        ServeLoadConfig,
        format_serve_load,
        run_serve_load,
    )

    defaults = ServeLoadConfig()
    parser = argparse.ArgumentParser(
        prog="repro serve-load",
        description=(
            "Replay a seeded open-loop arrival trace against the cascade "
            "server while the SLO autoscaler grows the host pool and "
            "tightens admission to hold a p99 latency target "
            "(docs/TRAFFIC.md). Exits nonzero unless the books balance."
        ),
    )
    parser.add_argument(
        "--trace", default=defaults.trace, metavar="SHAPE|PATH",
        help=(
            f"trace shape ({', '.join(sorted(TRACE_SHAPES))}) or a trace "
            "JSON file path (default %(default)s)"
        ),
    )
    parser.add_argument("--slo-p99-ms", type=float, default=defaults.slo_p99_ms,
                        help="p99 latency target in ms (default %(default)s)")
    parser.add_argument("--rate", type=float, default=defaults.rate,
                        help="nominal offered img/s for shape traces (default %(default)s)")
    parser.add_argument("--duration", type=float, default=defaults.duration,
                        help="trace span in seconds for shape traces (default %(default)s)")
    parser.add_argument(
        "--time-scale", type=float, default=defaults.time_scale, metavar="X",
        help="replay the trace X times faster than recorded (default %(default)s)",
    )
    parser.add_argument("--window", type=float, default=defaults.window_seconds,
                        metavar="SECONDS",
                        help="autoscaler control window (default %(default)s)")
    parser.add_argument(
        "--host-workers", type=int, default=None, metavar="N",
        help=(
            "starting parallel host pool size (default: REPRO_HOST_WORKERS "
            f"or {defaults.host_workers})"
        ),
    )
    parser.add_argument("--max-workers", type=int, default=defaults.max_workers,
                        help="pool-size ceiling for the autoscaler (default %(default)s)")
    parser.add_argument("--target-rerun", type=float, default=defaults.target_rerun_ratio)
    parser.add_argument("--t-fp", type=float, default=defaults.t_fp,
                        help="host seconds/image (default %(default)s)")
    parser.add_argument("--t-bnn", type=float, default=defaults.t_bnn,
                        help="BNN seconds/image (default %(default)s)")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help=(
            "chaos-under-load: inject the seeded repro.faults.FaultPlan JSON "
            "at PATH into the BNN/DMU/host stages"
        ),
    )
    parser.add_argument(
        "--obs-trace", default=None, metavar="PATH",
        help=(
            "record the run with repro.obs (slo.decision instants, "
            "slo.workers gauge) and write Chrome trace JSON to PATH"
        ),
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the per-window report JSON here (e.g. "
             "benchmarks/results/BENCH_traffic.json)",
    )
    args = parser.parse_args(argv)

    if args.trace not in TRACE_SHAPES:
        from pathlib import Path

        if not Path(args.trace).is_file():
            parser.error(
                f"--trace must be one of {', '.join(sorted(TRACE_SHAPES))} "
                f"or an existing trace file, got {args.trace!r}"
            )
    if args.slo_p99_ms <= 0:
        parser.error("--slo-p99-ms must be positive")
    if args.rate <= 0 or args.duration <= 0:
        parser.error("--rate and --duration must be positive")
    if args.time_scale <= 0:
        parser.error("--time-scale must be positive")
    if args.window <= 0:
        parser.error("--window must be positive")
    if not 0.0 <= args.target_rerun <= 1.0:
        parser.error(f"--target-rerun must be in [0, 1], got {args.target_rerun}")
    if args.t_fp <= 0 or args.t_bnn <= 0:
        parser.error("--t-fp and --t-bnn must be positive")
    if args.host_workers is not None and args.host_workers < 0:
        parser.error("--host-workers must be >= 0 (0 = serial host)")
    if args.max_workers < 1:
        parser.error("--max-workers must be >= 1")
    if args.fault_plan is not None:
        from pathlib import Path

        if not Path(args.fault_plan).is_file():
            parser.error(f"--fault-plan file not found: {args.fault_plan}")

    from dataclasses import replace

    from .parallel import resolve_host_workers

    if args.host_workers is not None:
        host_workers = args.host_workers
    else:
        host_workers = resolve_host_workers(None) or defaults.host_workers

    config = replace(
        ServeLoadConfig(),
        trace=args.trace,
        slo_p99_ms=args.slo_p99_ms,
        rate=args.rate,
        duration=args.duration,
        time_scale=args.time_scale,
        window_seconds=args.window,
        host_workers=host_workers,
        max_workers=args.max_workers,
        target_rerun_ratio=args.target_rerun,
        t_fp=args.t_fp,
        t_bnn=args.t_bnn,
        seed=args.seed,
        fault_plan_path=args.fault_plan,
    )
    print(
        f"serve-load: replaying trace '{config.trace}' "
        f"(x{config.time_scale:g} clock) vs SLO p99 <= "
        f"{config.slo_p99_ms:g} ms ...",
        file=sys.stderr,
    )
    if args.obs_trace:
        from . import obs

        with obs.tracing() as tracer:
            report = run_serve_load(config)
        trace_path = obs.write_chrome_trace(tracer, args.obs_trace)
        print(f"wrote {trace_path} ({len(tracer.spans)} spans)", file=sys.stderr)
    else:
        report = run_serve_load(config)
    print(format_serve_load(report))
    if args.output:
        import json
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}", file=sys.stderr)
    # The CI gate: every arrival must be accounted for exactly once.
    return 0 if report.books["balanced"] else 1


def bench_kernels_main(argv: list[str]) -> int:
    """``repro bench-kernels``: time the binary-kernel backends."""
    from .bnn.kernels import available_backends
    from .bnn.kernels.bench import (
        KernelBenchConfig,
        format_kernel_bench,
        run_kernel_bench,
        write_kernel_bench,
    )

    defaults = KernelBenchConfig()
    parser = argparse.ArgumentParser(
        prog="repro bench-kernels",
        description=(
            "Benchmark every binary-kernel backend on the folded CNV network's "
            "matmul shapes and end-to-end, verify bit-exactness, and write a "
            "JSON report tracking the BNN datapath's performance."
        ),
    )
    parser.add_argument("--scale", type=float, default=defaults.scale,
                        help="CNV width scale (default %(default)s)")
    parser.add_argument("--batch-size", type=int, default=defaults.batch_size)
    parser.add_argument("--images", type=int, default=defaults.num_images,
                        help="end-to-end images timed (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=defaults.repeats)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: shrink batch/reps to run in seconds")
    parser.add_argument(
        "--backends", nargs="+", default=None,
        help=f"backend subset to time (default: all = {', '.join(available_backends())})",
    )
    parser.add_argument(
        "--output", default="benchmarks/results/BENCH_kernels.json",
        help="JSON report path, or '-' to skip writing (default %(default)s)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "run the benchmark under a repro.obs tracer (kernel.* and bnn.* "
            "spans, autotune decisions) and write Chrome trace JSON to PATH"
        ),
    )
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error("--scale must be positive")
    for name in ("batch_size", "images", "repeats"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be >= 1")
    if args.backends:
        from .bnn.kernels import get_kernel

        unknown = []
        for b in args.backends:
            try:
                get_kernel(b)  # accepts variants like threaded@2
            except KeyError:
                unknown.append(b)
        if unknown:
            parser.error(f"unknown backend(s): {', '.join(unknown)}")
        if args.backends[0] != "reference":
            parser.error("--backends must start with 'reference' (the baseline)")

    config = KernelBenchConfig(
        scale=args.scale,
        batch_size=args.batch_size,
        num_images=args.images,
        repeats=args.repeats,
        seed=args.seed,
        smoke=args.smoke,
    )
    print("bench-kernels: timing backends (bit-exactness verified per shape) ...",
          file=sys.stderr)
    if args.trace:
        from . import obs

        with obs.tracing() as tracer:
            report = run_kernel_bench(config, backends=args.backends)
        trace_path = obs.write_chrome_trace(tracer, args.trace)
        print(f"wrote {trace_path} ({len(tracer.spans)} spans)", file=sys.stderr)
    else:
        report = run_kernel_bench(config, backends=args.backends)
    print(format_kernel_bench(report))
    if args.output != "-":
        path = write_kernel_bench(report, args.output)
        print(f"\nwrote {path}", file=sys.stderr)
    exact = all(all(s["bit_exact"].values()) for s in report["shapes"]) and all(
        run["predictions_match_reference"] for run in report["end_to_end"]["runs"].values()
    )
    return 0 if exact else 1


def bench_parallel_main(argv: list[str]) -> int:
    """``repro bench-parallel``: time the process-parallel host engine."""
    from .parallel.bench import (
        ParallelBenchConfig,
        format_parallel_bench,
        run_parallel_bench,
        write_parallel_bench,
    )

    defaults = ParallelBenchConfig()
    parser = argparse.ArgumentParser(
        prog="repro bench-parallel",
        description=(
            "Benchmark the host float path serially (legacy forward vs the "
            "inference engine), across threads (GIL control) and across "
            "shared-memory worker processes; verify bit-identical logits in "
            "every mode and write a JSON report with the Eq. (1) implications."
        ),
    )
    parser.add_argument("--model", choices=("a", "b", "c"), default=defaults.model,
                        help="host model (Table III; default %(default)s)")
    parser.add_argument("--scale", type=float, default=defaults.scale,
                        help="host model width scale (default %(default)s)")
    parser.add_argument("--images", type=int, default=defaults.num_images,
                        help="images timed per leg (default %(default)s)")
    parser.add_argument("--micro-batch", type=int, default=defaults.micro_batch)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(defaults.worker_counts),
        help="process-pool sizes to time (default %(default)s)",
    )
    parser.add_argument("--repeats", type=int, default=defaults.repeats)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: shrink images/repeats to run in seconds")
    parser.add_argument(
        "--output", default="benchmarks/results/BENCH_parallel.json",
        help="JSON report path, or '-' to skip writing (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error("--scale must be positive")
    for name in ("images", "micro_batch", "repeats"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be >= 1")
    if any(k < 1 for k in args.workers):
        parser.error("--workers entries must be >= 1")

    config = ParallelBenchConfig(
        model=args.model,
        scale=args.scale,
        num_images=args.images,
        micro_batch=args.micro_batch,
        worker_counts=tuple(args.workers),
        repeats=args.repeats,
        seed=args.seed,
        smoke=args.smoke,
    )
    print(
        "bench-parallel: timing serial/threads/process legs "
        "(bit-identity verified per leg) ...",
        file=sys.stderr,
    )
    report = run_parallel_bench(config)
    print(format_parallel_bench(report))
    if args.output != "-":
        path = write_parallel_bench(report, args.output)
        print(f"\nwrote {path}", file=sys.stderr)
    return 0 if report["summary"]["bit_identical_all"] else 1


def trace_main(argv: list[str]) -> int:
    """``repro trace``: record one traced cascade run and export it."""
    from .obs.run import (
        TraceRunConfig,
        format_trace_report,
        run_traced_cascade,
        write_simulated_trace,
        write_trace,
    )

    defaults = TraceRunConfig()
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Serve a synthetic image stream through the real folded-CNV + host "
            "cascade with the repro.obs tracer installed; print the span "
            "summary, the Eq. (1) overlap/residual checks and the Eqs. (3)-(5) "
            "per-layer breakdown; write a Chrome trace-event JSON timeline."
        ),
    )
    parser.add_argument("--requests", type=int, default=defaults.num_images,
                        help="images served (default %(default)s)")
    parser.add_argument("--scale", type=float, default=defaults.scale,
                        help="CNV width scale of the BNN stage (default %(default)s)")
    parser.add_argument("--host-scale", type=float, default=defaults.host_scale,
                        help="Model A width scale of the host stage (default %(default)s)")
    parser.add_argument(
        "--backend", default=None,
        help="binary-kernel backend (reference/bitplane/lut64/auto; default: env/auto)",
    )
    parser.add_argument("--target-rerun", type=float, default=defaults.target_rerun_ratio,
                        help="DMU threshold is calibrated to this rerun ratio")
    parser.add_argument("--batch-size", type=int, default=defaults.max_batch_size)
    parser.add_argument("--host-workers", type=int, default=defaults.num_host_workers)
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--output", default="trace.json", metavar="PATH",
        help="Chrome trace JSON path, '-' to skip writing (default %(default)s)",
    )
    parser.add_argument(
        "--simulated", default=None, metavar="PATH",
        help=(
            "also write the idealized repro.hetero simulation of the same run "
            "(measured stage times, perfect pipelining) as a second trace"
        ),
    )
    parser.add_argument(
        "--summary-json", default=None, metavar="PATH",
        help="write the span-summary/residual digest as JSON",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.scale <= 0 or args.host_scale <= 0:
        parser.error("--scale and --host-scale must be positive")
    if not 0.0 <= args.target_rerun <= 1.0:
        parser.error(f"--target-rerun must be in [0, 1], got {args.target_rerun}")
    for name in ("batch_size", "host_workers"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be >= 1")

    config = TraceRunConfig(
        num_images=args.requests,
        scale=args.scale,
        host_scale=args.host_scale,
        backend=args.backend,
        target_rerun_ratio=args.target_rerun,
        max_batch_size=args.batch_size,
        num_host_workers=args.host_workers,
        seed=args.seed,
    )
    print(
        f"trace: serving {config.num_images} synthetic images through the "
        f"folded CNV (scale={config.scale}) + host cascade ...",
        file=sys.stderr,
    )
    report = run_traced_cascade(config)
    print(format_trace_report(report))
    if args.output != "-":
        path = write_trace(report.tracer, args.output)
        print(f"\nwrote {path} — load it in chrome://tracing or ui.perfetto.dev",
              file=sys.stderr)
    if args.simulated:
        path = write_simulated_trace(report, args.simulated)
        print(f"wrote {path} (idealized hetero simulation of the same run)",
              file=sys.stderr)
    if args.summary_json:
        import json
        from pathlib import Path

        digest = {
            "summary": report.summary,
            "overlap_seconds": report.overlap_seconds,
            "bnn_busy_seconds": report.bnn_busy_seconds,
            "host_busy_seconds": report.host_busy_seconds,
            "layer_residuals": report.layer_residuals,
            "eq1": report.eq1,
            "rerun_ratio": report.rerun_ratio,
            "completed": report.completed,
            "wall_seconds": report.wall_seconds,
        }
        path = Path(args.summary_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0


def serve_net_main(argv: list[str]) -> int:
    """``repro serve-net``: loopback-drive the socket frontend + router."""
    from .net.bench import NetBenchConfig, format_net_bench, run_net_bench
    from .net.router import PLACEMENTS

    defaults = NetBenchConfig()
    parser = argparse.ArgumentParser(
        prog="repro serve-net",
        description=(
            "Start the network serving stack (socket frontend + shard router "
            "+ N CascadeServer replica processes), push a synthetic image "
            "stream over real loopback sockets, and verify the wire books "
            "balance at every layer (routed + rejected + failed == submitted)."
        ),
    )
    parser.add_argument("--requests", type=int, default=defaults.num_requests)
    parser.add_argument("--clients", type=int, default=defaults.num_clients)
    parser.add_argument("--replicas", type=int, default=defaults.num_replicas,
                        help="CascadeServer replica processes (default %(default)s)")
    parser.add_argument("--placement", choices=PLACEMENTS, default=defaults.placement)
    parser.add_argument("--port", type=int, default=defaults.port,
                        help="bind port (default 0 = ephemeral)")
    parser.add_argument("--max-inflight", type=int, default=defaults.max_inflight,
                        help="frontend admission bound (default %(default)s)")
    parser.add_argument("--threshold", type=float, default=defaults.threshold,
                        help="static DMU threshold of each replica")
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="inject this seeded repro.faults.FaultPlan JSON into every replica",
    )
    parser.add_argument(
        "--kill-replica-after", type=int, default=None, metavar="N",
        help="chaos: hard-kill replica 0 after N requests were submitted",
    )
    parser.add_argument(
        "--ladder", action="store_true",
        help=(
            "run each replica as a 3-stage precision ladder "
            "(bnn -> mid1 -> host, docs/LADDER.md) instead of the 2-stage cascade"
        ),
    )
    args = parser.parse_args(argv)

    if args.requests < 1:
        parser.error("--requests must be >= 1")
    for name in ("clients", "replicas", "max_inflight"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be >= 1")
    if not 0.0 <= args.threshold <= 1.0:
        parser.error(f"--threshold must be in [0, 1], got {args.threshold}")
    if args.port < 0:
        parser.error("--port must be >= 0")
    if args.kill_replica_after is not None and args.kill_replica_after < 0:
        parser.error("--kill-replica-after must be >= 0")
    if args.fault_plan is not None:
        from pathlib import Path

        if not Path(args.fault_plan).is_file():
            parser.error(f"--fault-plan file not found: {args.fault_plan}")

    config = NetBenchConfig(
        num_requests=args.requests,
        num_clients=args.clients,
        num_replicas=args.replicas,
        placement=args.placement,
        port=args.port,
        max_inflight=args.max_inflight,
        threshold=args.threshold,
        seed=args.seed,
        fault_plan_path=args.fault_plan,
        kill_replica_after=args.kill_replica_after,
        ladder=args.ladder,
    )
    print(
        f"serve-net: {config.num_replicas} replica processes, "
        f"{config.num_clients} clients x loopback sockets, "
        f"{config.num_requests} requests ...",
        file=sys.stderr,
    )
    report = run_net_bench(config)
    print(format_net_bench(report))
    return 0 if report["ok"] else 1


def serve_tenants_main(argv: list[str]) -> int:
    """``repro serve-tenants``: two-tenant shared-pool + cache benchmark."""
    from dataclasses import replace

    from .serve.tenant_bench import (
        TenantBenchConfig,
        format_tenant_bench,
        run_tenant_bench,
        write_tenant_bench,
    )

    defaults = TenantBenchConfig()
    parser = argparse.ArgumentParser(
        prog="repro serve-tenants",
        description=(
            "Serve two tenants (Model A + Model C cascades) from one "
            "DRR-scheduled shared host pool, replay the same video trace at "
            "both — once cold, once behind the content-addressed result "
            "cache — and verify hit rate, throughput win, bit-identity and "
            "books balance (docs/TENANCY.md). Exits nonzero unless every "
            "check passes."
        ),
    )
    parser.add_argument("--frames", type=int, default=defaults.num_frames,
                        help="video frames in the trace (default %(default)s)")
    parser.add_argument(
        "--repeat-frames", type=int, default=defaults.repeat_frames,
        help=(
            "frame hold factor; exact duplicate fraction = (N-1)/N "
            "(default %(default)s)"
        ),
    )
    parser.add_argument("--fps", type=float, default=defaults.fps)
    parser.add_argument("--time-scale", type=float, default=defaults.time_scale,
                        help="replay speed multiplier (default %(default)s)")
    parser.add_argument("--lanes", type=int, default=defaults.lanes,
                        help="concurrent pool executions (default %(default)s)")
    parser.add_argument(
        "--cache-mb", type=float, default=defaults.cache_max_bytes / (1024 * 1024),
        help="result-cache byte budget in MiB (default %(default)s)",
    )
    parser.add_argument("--quota", type=int, default=defaults.quota,
                        help="per-tenant in-flight quota (default %(default)s)")
    parser.add_argument("--threshold", type=float, default=defaults.threshold,
                        help="static DMU threshold (default %(default)s)")
    parser.add_argument("--t-bnn", type=float, default=defaults.t_bnn,
                        help="modeled BNN seconds/image (default %(default)s)")
    parser.add_argument(
        "--host-workers", type=int, default=None, metavar="N",
        help=(
            "per-tenant ParallelHostRunner process pool size "
            "(default: REPRO_HOST_WORKERS or serial)"
        ),
    )
    parser.add_argument("--seed", type=int, default=defaults.seed)
    parser.add_argument(
        "--output", default="benchmarks/results/BENCH_cache.json",
        help="JSON report path, or '-' to skip writing (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.frames < 1:
        parser.error("--frames must be >= 1")
    if args.repeat_frames < 1:
        parser.error("--repeat-frames must be >= 1")
    if args.fps <= 0 or args.time_scale <= 0:
        parser.error("--fps and --time-scale must be positive")
    if args.lanes < 1 or args.quota < 1:
        parser.error("--lanes and --quota must be >= 1")
    if args.cache_mb <= 0:
        parser.error("--cache-mb must be positive (the cached leg needs a cache)")
    if not 0.0 <= args.threshold <= 1.0:
        parser.error(f"--threshold must be in [0, 1], got {args.threshold}")
    if args.t_bnn <= 0:
        parser.error("--t-bnn must be positive")
    if args.host_workers is not None and args.host_workers < 0:
        parser.error("--host-workers must be >= 0 (0 = serial host)")

    config = replace(
        TenantBenchConfig(),
        num_frames=args.frames,
        repeat_frames=args.repeat_frames,
        fps=args.fps,
        time_scale=args.time_scale,
        lanes=args.lanes,
        cache_max_bytes=int(args.cache_mb * 1024 * 1024),
        quota=args.quota,
        threshold=args.threshold,
        t_bnn=args.t_bnn,
        host_workers=args.host_workers,
        seed=args.seed,
    )
    print(
        f"serve-tenants: 2 legs x 2 tenants, {config.num_frames} frames "
        f"x{config.repeat_frames} hold "
        f"(duplicate fraction {config.duplicate_fraction:.0%}) ...",
        file=sys.stderr,
    )
    report = run_tenant_bench(config)
    print(format_tenant_bench(report))
    if args.output != "-":
        path = write_tenant_bench(report, args.output)
        print(f"\nwrote {path}", file=sys.stderr)
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve-bench":
        return serve_bench_main(argv[1:])
    if argv and argv[0] == "serve-tenants":
        return serve_tenants_main(argv[1:])
    if argv and argv[0] == "serve-net":
        return serve_net_main(argv[1:])
    if argv and argv[0] == "serve-load":
        return serve_load_main(argv[1:])
    if argv and argv[0] == "bench-kernels":
        return bench_kernels_main(argv[1:])
    if argv and argv[0] == "bench-parallel":
        return bench_parallel_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the DATE'18 multi-precision CNN paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}), 'all', or 'list'",
    )
    parser.add_argument(
        "--train-budget",
        choices=sorted(TRAIN_BUDGETS),
        default="bench",
        help="training budget for experiments that need trained networks",
    )
    args = parser.parse_args(argv)

    names = list(args.experiments)
    if names == ["list"]:
        print("available experiments:", ", ".join(EXPERIMENTS))
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    workbench = None
    if any(_needs_workbench(n) for n in names):
        workbench = Workbench(TRAIN_BUDGETS[args.train_budget])
        print(
            f"preparing workbench (budget={args.train_budget}; "
            "first run trains in numpy, later runs hit the cache) ...",
            file=sys.stderr,
        )
        workbench.prepare_all()

    for i, name in enumerate(names):
        if i:
            print()
        print(_run_one(name, workbench))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
