"""ASCII Gantt rendering of a simulation timeline.

Makes the Fig. 2 overlap visible: the FPGA lane processes batch *i* while
the host lane re-infers the flagged subset of batch *i-1*.
"""

from __future__ import annotations

from .timeline import Timeline

__all__ = ["gantt_chart"]


def gantt_chart(
    timeline: Timeline,
    width: int = 72,
    max_span_seconds: float | None = None,
) -> str:
    """Render each device as one lane of busy blocks over wall-clock time.

    Parameters
    ----------
    timeline:
        The recorded intervals.
    width:
        Characters across the full (possibly clipped) span.
    max_span_seconds:
        Clip the chart to the first so-many seconds (long streams would
        otherwise compress every batch into one cell).
    """
    if not timeline.intervals:
        return "(empty timeline)"
    t0 = min(i.start for i in timeline.intervals)
    t_end = max(i.end for i in timeline.intervals)
    if max_span_seconds is not None:
        t_end = min(t_end, t0 + max_span_seconds)
    span = t_end - t0
    if span <= 0:
        return "(zero-length timeline)"

    devices = []
    for interval in timeline.intervals:
        if interval.device not in devices:
            devices.append(interval.device)

    name_pad = max(len(d) for d in devices)
    lines = []
    for device in devices:
        lane = [" "] * width
        for interval in timeline.device_intervals(device):
            if interval.start >= t_end:
                continue
            lo = int((interval.start - t0) / span * (width - 1))
            hi = int((min(interval.end, t_end) - t0) / span * (width - 1))
            for c in range(lo, hi + 1):
                lane[c] = "#"
        busy = timeline.utilization(device)
        lines.append(f"{device.rjust(name_pad)} |{''.join(lane)}| {100 * busy:.0f}% busy")
    axis = " " * name_pad + " +" + "-" * width + "+"
    label = (
        " " * name_pad
        + f"  0s".ljust(width // 2)
        + f"{span:.3f}s".rjust(width // 2)
    )
    return "\n".join(lines + [axis, label])
