"""Timed device models for the heterogeneous simulator.

The two executors of Fig. 2: the FPGA fabric running the FINN pipeline,
and the dual-core ARM host running the DMU plus the Caffe re-inference.
Both express "how long does this much work take", leaving scheduling to
:mod:`repro.hetero.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FPGAExecutor", "HostExecutor"]


@dataclass(frozen=True)
class FPGAExecutor:
    """FPGA batch-execution timing.

    Parameters
    ----------
    interval_seconds:
        Steady-state seconds per image (1 / obtained FPS of the FINN
        configuration).
    fill_seconds:
        Pipeline ramp-up: extra seconds the first image of a batch pays
        (the sum of all engine latencies minus one interval).
    """

    interval_seconds: float
    fill_seconds: float = 0.0

    def __post_init__(self):
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.fill_seconds < 0:
            raise ValueError("fill_seconds must be non-negative")

    def batch_seconds(self, batch_size: int) -> float:
        """Time to classify one batch on the fabric."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.fill_seconds + batch_size * self.interval_seconds

    @classmethod
    def from_pipeline(cls, perf) -> "FPGAExecutor":
        """Build from a :class:`repro.finn.PipelinePerformance`."""
        interval = perf.seconds_per_image
        fill = max(0.0, perf.latency_cycles / perf.clock_hz - interval)
        return cls(interval_seconds=interval, fill_seconds=fill)


@dataclass(frozen=True)
class HostExecutor:
    """ARM host timing: DMU scan plus float re-inference.

    Parameters
    ----------
    seconds_per_image:
        Float-network inference time per image (t_fp/img).
    dmu_seconds_per_image:
        Cost of one DMU evaluation (ten multiply-adds + sigmoid) — tiny
        but charged per *batch image*, since the DMU scans every score
        vector the FPGA produces.
    """

    seconds_per_image: float
    dmu_seconds_per_image: float = 2e-7

    def __post_init__(self):
        if self.seconds_per_image <= 0:
            raise ValueError("seconds_per_image must be positive")
        if self.dmu_seconds_per_image < 0:
            raise ValueError("dmu_seconds_per_image must be non-negative")

    def rerun_seconds(self, batch_size: int, num_flagged: int) -> float:
        """Time to scan a batch's scores and re-infer the flagged subset."""
        if batch_size < 0 or num_flagged < 0 or num_flagged > batch_size:
            raise ValueError("need 0 <= num_flagged <= batch_size")
        return batch_size * self.dmu_seconds_per_image + num_flagged * self.seconds_per_image
