"""Execution timeline recording for the heterogeneous simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One busy interval of one device."""

    device: str
    start: float
    end: float
    label: str

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError("interval must not end before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Ordered record of device busy intervals."""

    intervals: list[Interval] = field(default_factory=list)

    def record(self, device: str, start: float, end: float, label: str) -> Interval:
        interval = Interval(device, start, end, label)
        self.intervals.append(interval)
        return interval

    def device_intervals(self, device: str) -> list[Interval]:
        return [i for i in self.intervals if i.device == device]

    def busy_seconds(self, device: str) -> float:
        return sum(i.duration for i in self.device_intervals(device))

    def makespan(self) -> float:
        """Time between the first start and the last end (0 if empty)."""
        if not self.intervals:
            return 0.0
        start = min(i.start for i in self.intervals)
        end = max(i.end for i in self.intervals)
        return end - start

    def utilization(self, device: str) -> float:
        """Busy fraction of the device over the makespan."""
        span = self.makespan()
        return self.busy_seconds(device) / span if span > 0 else 0.0

    def overlap_seconds(self, device_a: str, device_b: str) -> float:
        """Total time both devices are busy simultaneously."""
        total = 0.0
        for a in self.device_intervals(device_a):
            for b in self.device_intervals(device_b):
                lo = max(a.start, b.start)
                hi = min(a.end, b.end)
                if hi > lo:
                    total += hi - lo
        return total
