"""Comparison of simulated/served cascade timing against Eq. (1)/(1N).

The 2-stage helpers check Eq. (1) as written in the paper; ladders use
:func:`compare_serving_with_ladder`, which evaluates the generalized
Eq. (1N) bound ``max_i t_i * R_i`` (``docs/LADDER.md``) at the forward
ratios a serving run actually measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.analytic import ladder_interval, multi_precision_interval
from .scheduler import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..serve.metrics import MetricsSnapshot

__all__ = [
    "AnalyticComparison",
    "compare_with_eq1",
    "compare_serving_with_eq1",
    "compare_serving_with_ladder",
]


@dataclass(frozen=True)
class AnalyticComparison:
    """Simulated vs analytic per-image interval."""

    simulated_seconds_per_image: float
    analytic_seconds_per_image: float

    @property
    def relative_error(self) -> float:
        """(sim - analytic) / analytic; positive when Eq. (1) is optimistic."""
        return (
            self.simulated_seconds_per_image - self.analytic_seconds_per_image
        ) / self.analytic_seconds_per_image

    @property
    def simulated_fps(self) -> float:
        return 1.0 / self.simulated_seconds_per_image

    @property
    def analytic_fps(self) -> float:
        return 1.0 / self.analytic_seconds_per_image


def compare_with_eq1(
    result: SimulationResult, t_fp: float, t_bnn: float
) -> AnalyticComparison:
    """Compare a simulation against Eq. (1) at the realized rerun ratio.

    Eq. (1) is a steady-state approximation: it ignores the pipeline
    ramp-up, the trailing host call, and per-batch rounding, so the
    simulated interval is expected to sit slightly above it.
    """
    analytic = multi_precision_interval(t_fp, t_bnn, result.rerun_ratio)
    return AnalyticComparison(
        simulated_seconds_per_image=result.seconds_per_image,
        analytic_seconds_per_image=analytic,
    )


def compare_serving_with_eq1(
    snapshot: "MetricsSnapshot", t_fp: float, t_bnn: float, num_host_workers: int = 1
) -> AnalyticComparison:
    """Compare a live-serving window against Eq. (1), like the simulator.

    The served system differs from Eq. (1)'s ideal in exactly the ways
    the simulator does (ramp-up, batching quantisation) plus queueing and
    thread scheduling, so the measured interval sits above the bound; the
    host term is divided by the worker-pool size since Eq. (1) models a
    single host executor.
    """
    analytic = multi_precision_interval(
        t_fp / num_host_workers, t_bnn, snapshot.rerun_ratio
    )
    return AnalyticComparison(
        simulated_seconds_per_image=snapshot.seconds_per_image,
        analytic_seconds_per_image=analytic,
    )


def compare_serving_with_ladder(
    snapshot: "MetricsSnapshot",
    stage_times: Sequence[float],
    stage_names: Sequence[str],
    num_host_workers: int = 1,
) -> AnalyticComparison:
    """Compare a live ladder-serving window against Eq. (1N).

    ``stage_times``/``stage_names`` describe the rungs cheapest-first
    (the names must match the server's — ``("bnn", ..., "host")``); the
    per-hop forward ratios come from the snapshot's
    ``stage_arrived``/``stage_forwarded`` traffic counters, so the bound
    is evaluated at the routing the run actually realized.  The final
    stage time is divided by the worker-pool size, as in the 2-stage
    form.  At two stages this reduces to :func:`compare_serving_with_eq1`
    up to the measured-ratio definition (per-rung arrivals, not
    completions).
    """
    if len(stage_names) != len(stage_times):
        raise ValueError("need one name per stage")
    if num_host_workers < 1:
        raise ValueError("num_host_workers must be >= 1")
    ratios = snapshot.ladder_forward_ratios
    forward_ratios = [ratios.get(name, 0.0) for name in stage_names[:-1]]
    effective = [float(t) for t in stage_times]
    effective[-1] = effective[-1] / num_host_workers
    analytic = ladder_interval(effective, forward_ratios)
    return AnalyticComparison(
        simulated_seconds_per_image=snapshot.seconds_per_image,
        analytic_seconds_per_image=analytic,
    )
