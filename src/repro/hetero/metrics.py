"""Comparison of simulated cascade timing against the Eq. (1) closed form."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.analytic import multi_precision_interval
from .scheduler import SimulationResult

__all__ = ["AnalyticComparison", "compare_with_eq1"]


@dataclass(frozen=True)
class AnalyticComparison:
    """Simulated vs analytic per-image interval."""

    simulated_seconds_per_image: float
    analytic_seconds_per_image: float

    @property
    def relative_error(self) -> float:
        """(sim - analytic) / analytic; positive when Eq. (1) is optimistic."""
        return (
            self.simulated_seconds_per_image - self.analytic_seconds_per_image
        ) / self.analytic_seconds_per_image

    @property
    def simulated_fps(self) -> float:
        return 1.0 / self.simulated_seconds_per_image

    @property
    def analytic_fps(self) -> float:
        return 1.0 / self.analytic_seconds_per_image


def compare_with_eq1(
    result: SimulationResult, t_fp: float, t_bnn: float
) -> AnalyticComparison:
    """Compare a simulation against Eq. (1) at the realized rerun ratio.

    Eq. (1) is a steady-state approximation: it ignores the pipeline
    ramp-up, the trailing host call, and per-batch rounding, so the
    simulated interval is expected to sit slightly above it.
    """
    analytic = multi_precision_interval(t_fp, t_bnn, result.rerun_ratio)
    return AnalyticComparison(
        simulated_seconds_per_image=result.seconds_per_image,
        analytic_seconds_per_image=analytic,
    )
