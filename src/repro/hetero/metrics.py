"""Comparison of simulated/served cascade timing against Eq. (1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.analytic import multi_precision_interval
from .scheduler import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..serve.metrics import MetricsSnapshot

__all__ = ["AnalyticComparison", "compare_with_eq1", "compare_serving_with_eq1"]


@dataclass(frozen=True)
class AnalyticComparison:
    """Simulated vs analytic per-image interval."""

    simulated_seconds_per_image: float
    analytic_seconds_per_image: float

    @property
    def relative_error(self) -> float:
        """(sim - analytic) / analytic; positive when Eq. (1) is optimistic."""
        return (
            self.simulated_seconds_per_image - self.analytic_seconds_per_image
        ) / self.analytic_seconds_per_image

    @property
    def simulated_fps(self) -> float:
        return 1.0 / self.simulated_seconds_per_image

    @property
    def analytic_fps(self) -> float:
        return 1.0 / self.analytic_seconds_per_image


def compare_with_eq1(
    result: SimulationResult, t_fp: float, t_bnn: float
) -> AnalyticComparison:
    """Compare a simulation against Eq. (1) at the realized rerun ratio.

    Eq. (1) is a steady-state approximation: it ignores the pipeline
    ramp-up, the trailing host call, and per-batch rounding, so the
    simulated interval is expected to sit slightly above it.
    """
    analytic = multi_precision_interval(t_fp, t_bnn, result.rerun_ratio)
    return AnalyticComparison(
        simulated_seconds_per_image=result.seconds_per_image,
        analytic_seconds_per_image=analytic,
    )


def compare_serving_with_eq1(
    snapshot: "MetricsSnapshot", t_fp: float, t_bnn: float, num_host_workers: int = 1
) -> AnalyticComparison:
    """Compare a live-serving window against Eq. (1), like the simulator.

    The served system differs from Eq. (1)'s ideal in exactly the ways
    the simulator does (ramp-up, batching quantisation) plus queueing and
    thread scheduling, so the measured interval sits above the bound; the
    host term is divided by the worker-pool size since Eq. (1) models a
    single host executor.
    """
    analytic = multi_precision_interval(
        t_fp / num_host_workers, t_bnn, snapshot.rerun_ratio
    )
    return AnalyticComparison(
        simulated_seconds_per_image=snapshot.seconds_per_image,
        analytic_seconds_per_image=analytic,
    )
