"""Heterogeneous FPGA+CPU execution simulator (Fig. 2's pipeline)."""

from .devices import FPGAExecutor, HostExecutor
from .gantt import gantt_chart
from .metrics import (
    AnalyticComparison,
    compare_serving_with_eq1,
    compare_serving_with_ladder,
    compare_with_eq1,
)
from .scheduler import (
    BatchRecord,
    SimulationResult,
    flagged_per_batch,
    simulate_cascade,
)
from .timeline import Interval, Timeline

__all__ = [
    "FPGAExecutor",
    "HostExecutor",
    "Interval",
    "Timeline",
    "BatchRecord",
    "SimulationResult",
    "simulate_cascade",
    "flagged_per_batch",
    "AnalyticComparison",
    "compare_with_eq1",
    "compare_serving_with_eq1",
    "compare_serving_with_ladder",
    "gantt_chart",
]
