"""Discrete-event simulation of the paper's async/wait batch pipeline.

Reproduces the execution structure of Fig. 2 / the SDSoC pseudo-code:

    for i in 0..num_batches-1:
        #pragma SDS async(1)
        FPGA_execution(batch[i])                      # fabric
        if i > 0:
            ARM_execution(flagged images of batch[i-1])  # host, in parallel
        #pragma SDS wait(1)
    ARM_execution(flagged images of last batch)

Iteration ``i`` starts when *both* the fabric (batch i-1) and the host
(subset of batch i-2) are done — the ``wait`` joins the async FPGA call,
and the host call is synchronous within the loop body.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .devices import FPGAExecutor, HostExecutor
from .timeline import Timeline

__all__ = ["BatchRecord", "SimulationResult", "simulate_cascade", "flagged_per_batch"]

FPGA_DEVICE = "fpga"
HOST_DEVICE = "host"


@dataclass(frozen=True)
class BatchRecord:
    """Timing of one batch through the cascade."""

    index: int
    size: int
    num_flagged: int
    fpga_start: float
    fpga_end: float
    host_start: float | None   # None when nothing was flagged
    host_end: float | None

    @property
    def completion_time(self) -> float:
        """When every image of this batch has its final answer."""
        return self.host_end if self.host_end is not None else self.fpga_end


@dataclass
class SimulationResult:
    """Outcome of one cascade simulation."""

    batches: list[BatchRecord]
    timeline: Timeline
    total_seconds: float
    num_images: int

    @property
    def images_per_second(self) -> float:
        return self.num_images / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def seconds_per_image(self) -> float:
        return self.total_seconds / self.num_images if self.num_images else 0.0

    @property
    def rerun_ratio(self) -> float:
        flagged = sum(b.num_flagged for b in self.batches)
        return flagged / self.num_images if self.num_images else 0.0

    def average_batch_latency(self) -> float:
        """Mean time from a batch's FPGA start to its final answer."""
        if not self.batches:
            return 0.0
        return float(np.mean([b.completion_time - b.fpga_start for b in self.batches]))

    def fpga_utilization(self) -> float:
        return self.timeline.utilization(FPGA_DEVICE)

    def host_utilization(self) -> float:
        return self.timeline.utilization(HOST_DEVICE)


def flagged_per_batch(rerun_mask: np.ndarray, batch_size: int) -> list[int]:
    """Split a per-image rerun mask into per-batch flagged counts."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    mask = np.asarray(rerun_mask, dtype=bool)
    return [
        int(mask[start : start + batch_size].sum())
        for start in range(0, mask.shape[0], batch_size)
    ]


def simulate_cascade(
    fpga: FPGAExecutor,
    host: HostExecutor,
    num_images: int,
    batch_size: int,
    rerun_mask: np.ndarray | None = None,
    rerun_ratio: float | None = None,
) -> SimulationResult:
    """Simulate the pipelined cascade over a stream of images.

    Either ``rerun_mask`` (per-image booleans, e.g. from a real
    :class:`~repro.core.pipeline.CascadeResult`) or ``rerun_ratio``
    (deterministic fraction, rounded per batch) must be given.
    """
    if num_images <= 0:
        raise ValueError("num_images must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if (rerun_mask is None) == (rerun_ratio is None):
        raise ValueError("provide exactly one of rerun_mask or rerun_ratio")

    sizes = [
        min(batch_size, num_images - start) for start in range(0, num_images, batch_size)
    ]
    if rerun_mask is not None:
        mask = np.asarray(rerun_mask, dtype=bool)
        if mask.shape != (num_images,):
            raise ValueError("rerun_mask must have one entry per image")
        flagged = flagged_per_batch(mask, batch_size)
    else:
        if not 0.0 <= rerun_ratio <= 1.0:
            raise ValueError("rerun_ratio must be in [0, 1]")
        flagged = [int(round(s * rerun_ratio)) for s in sizes]

    timeline = Timeline()
    records: list[BatchRecord] = []
    fpga_ends: list[float] = []
    host_free = 0.0
    loop_time = 0.0

    for i, size in enumerate(sizes):
        # Async FPGA launch for batch i.
        fpga_start = loop_time
        fpga_end = fpga_start + fpga.batch_seconds(size)
        timeline.record(FPGA_DEVICE, fpga_start, fpga_end, f"batch[{i}]")
        fpga_ends.append(fpga_end)

        # Synchronous host re-inference of batch i-1's flagged subset.
        host_end_prev: float | None = None
        host_start_prev: float | None = None
        if i > 0:
            duration = host.rerun_seconds(sizes[i - 1], flagged[i - 1])
            host_start_prev = max(loop_time, host_free)
            host_end_prev = host_start_prev + duration
            timeline.record(
                HOST_DEVICE, host_start_prev, host_end_prev, f"rerun[{i - 1}]"
            )
            host_free = host_end_prev
            records.append(
                BatchRecord(
                    index=i - 1,
                    size=sizes[i - 1],
                    num_flagged=flagged[i - 1],
                    fpga_start=timeline.device_intervals(FPGA_DEVICE)[i - 1].start,
                    fpga_end=fpga_ends[i - 1],
                    host_start=host_start_prev,
                    host_end=host_end_prev,
                )
            )

        # SDS wait(1): next loop iteration starts when both are done.
        loop_time = max(fpga_end, host_free)

    # Trailing host call for the last batch.
    duration = host.rerun_seconds(sizes[-1], flagged[-1])
    host_start = max(loop_time, host_free)
    host_end = host_start + duration
    timeline.record(HOST_DEVICE, host_start, host_end, f"rerun[{len(sizes) - 1}]")
    records.append(
        BatchRecord(
            index=len(sizes) - 1,
            size=sizes[-1],
            num_flagged=flagged[-1],
            fpga_start=timeline.device_intervals(FPGA_DEVICE)[-1].start,
            fpga_end=fpga_ends[-1],
            host_start=host_start,
            host_end=host_end,
        )
    )

    return SimulationResult(
        batches=records,
        timeline=timeline,
        total_seconds=host_end,
        num_images=num_images,
    )
