"""repro — reproduction of *Multi-Precision Convolutional Neural Networks
on Heterogeneous Hardware* (Amiri, Hosseinabady, McIntosh-Smith,
Nunez-Yanez — DATE 2018).

Subpackages
-----------
``repro.nn``
    From-scratch numpy CNN framework (the Caffe substitute).
``repro.bnn``
    Binarized layers, straight-through training, XNOR-popcount inference
    and BatchNorm-to-threshold folding (the BinaryNet/FINN arithmetic).
``repro.finn``
    Analytical FINN FPGA hardware model: PE/SIMD engines, cycle counts
    (paper Eqs. (3)-(4)), FPS (Eq. (5)), BRAM/LUT allocation and the block
    array-partitioning optimization (Figs. 3-4).
``repro.host``
    ARM Cortex-A9 host performance model (Table IV rates).
``repro.data``
    Synthetic CIFAR-10-like dataset substrate.
``repro.models``
    Network zoo: FINN CNV (Table I) and host Models A/B/C (Table III).
``repro.core``
    The paper's contribution: DMU confidence unit, FS taxonomy,
    analytic Eqs. (1)-(2), and the multi-precision cascade pipeline.
``repro.hetero``
    Discrete-event simulator of the FPGA/CPU pipelined execution (Fig. 2).
``repro.serve``
    Concurrent cascade serving layer (request-driven Fig. 1).
``repro.stream``
    Live-video / ROI workload the paper motivates.
``repro.obs``
    Tracing & profiling: span tracer, counters/gauges, Chrome-trace
    export, Eq. (1)/(3)-(5) predicted-vs-measured residuals.
``repro.experiments``
    One runner per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
