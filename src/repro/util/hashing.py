"""Shared blake2b digests: rendezvous placement and cache keying.

Two subsystems hash raw image bytes and both must be deterministic
across processes and releases:

* :class:`repro.net.ShardRouter`'s ``rendezvous`` placement ranks
  replicas by highest-random-weight (HRW) score of the image payload —
  :func:`rendezvous_score` / :func:`rendezvous_order` here are the
  exact keyed-blake2b construction the router has always used, so
  placement stays **byte-identical** after the extraction (pinned by a
  golden test in ``tests/cache/test_hashing.py``).
* :class:`repro.cache.ResultCache` keys terminal answers by
  :func:`content_key`, a blake2b digest over the image's dtype, shape
  and raw C-order bytes.  Including the geometry means two images whose
  buffers happen to share bytes but differ in dtype or shape can never
  collide into one cache entry.

Both paths intentionally share one hash family: the same image bytes
that pick a replica under rendezvous placement also name that replica's
cache entry, which is what makes per-replica caches effective (every
duplicate of an image lands on the shard already holding its answer).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["content_key", "rendezvous_order", "rendezvous_score"]

#: Digest width (bytes) of the HRW score hash — the router's historical
#: choice; 64 bits is plenty for ranking a handful of replicas.
RENDEZVOUS_DIGEST_SIZE = 8

#: Digest width (bytes) of a cache content key.  128 bits keeps the
#: collision probability negligible for any realistic cache population.
CONTENT_DIGEST_SIZE = 16


def payload_bytes(image: np.ndarray) -> bytes:
    """Canonical raw bytes of *image* (C-order, no copy when contiguous)."""
    return np.ascontiguousarray(image).tobytes()


def rendezvous_score(payload: bytes, index: int) -> int:
    """HRW score of replica *index* for *payload* (higher wins).

    Keyed blake2b with the replica index as an 8-byte big-endian key —
    byte-for-byte the construction ``repro.net.router`` hand-rolled
    before this helper existed; do not change it, placement stability
    across versions depends on it.
    """
    digest = hashlib.blake2b(
        payload, digest_size=RENDEZVOUS_DIGEST_SIZE, key=index.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_order(image: np.ndarray, n: int) -> list[int]:
    """Replica indices ``0..n-1`` ranked by descending HRW score."""
    payload = payload_bytes(np.asarray(image))
    scores = [(rendezvous_score(payload, index), index) for index in range(n)]
    return [index for _, index in sorted(scores, reverse=True)]


def content_key(image: np.ndarray, namespace: str = "") -> bytes:
    """Content address of *image*: blake2b over geometry + raw bytes.

    *namespace* partitions the key space (e.g. per tenant: the same
    image classified by Model A and Model C has two different terminal
    answers, so it must occupy two cache entries).
    """
    image = np.asarray(image)
    h = hashlib.blake2b(digest_size=CONTENT_DIGEST_SIZE)
    if namespace:
        h.update(namespace.encode("utf-8"))
        h.update(b"\x00")
    h.update(str(image.dtype).encode("ascii"))
    h.update(np.asarray(image.shape, dtype="<i8").tobytes())
    h.update(payload_bytes(image))
    return h.digest()
