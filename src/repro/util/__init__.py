"""Small shared utilities with no repro-internal dependencies.

Currently one module: :mod:`repro.util.hashing`, the blake2b helpers
shared by rendezvous placement (:mod:`repro.net.router`) and
content-addressed cache keying (:mod:`repro.cache`).
"""

from .hashing import content_key, rendezvous_order, rendezvous_score

__all__ = ["content_key", "rendezvous_order", "rendezvous_score"]
