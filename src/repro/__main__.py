"""Module entry point: ``python -m repro <experiment> ...``."""

from .cli import main

raise SystemExit(main())
